#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/crawl_service.h"
#include "core/smart_crawler.h"
#include "datagen/scenario.h"
#include "hidden/budget.h"
#include "sample/sampler.h"
#include "util/hash.h"

/// CrawlService contract tests.
///
/// Three claims the service makes are pinned here:
///
///  1. Golden equivalence — driving ONE session through the service is
///     bit-identical to the SmartCrawler facade for every policy × ER
///     combo (and the facade itself is pinned to the pre-refactor golden
///     table by golden_crawl_test.cc, so the service transitively
///     reproduces the golden crawls).
///  2. Determinism — N concurrent sessions produce bit-identical
///     per-session results at any worker thread count, including the
///     shared-cache warming order.
///  3. Shared-cache semantics — a query answered for tenant A is a cache
///     hit for tenant B, and under per-tenant daily-quota metering such
///     hits are metered-free.
namespace smartcrawl::core {
namespace {

constexpr size_t kBudget = 30;

constexpr SelectionPolicy kAllPolicies[] = {
    SelectionPolicy::kSimple, SelectionPolicy::kBound,
    SelectionPolicy::kEstBiased, SelectionPolicy::kEstUnbiased,
    SelectionPolicy::kIdeal};
constexpr match::ErMode kAllErModes[] = {match::ErMode::kEntityOracle,
                                         match::ErMode::kExact,
                                         match::ErMode::kJaccard};

/// Same scenario as golden_crawl_test.cc so the equivalence below pins
/// the service to the exact crawls the golden table freezes.
Result<datagen::Scenario> BuildGoldenScenario() {
  datagen::DblpScenarioConfig cfg;
  cfg.corpus.corpus_size = 4000;
  cfg.corpus.db_community_fraction = 0.5;
  cfg.hidden_size = 1500;
  cfg.local_size = 250;
  cfg.top_k = 50;
  cfg.error_rate = 0.2;
  cfg.seed = 71;
  return datagen::BuildDblpScenario(cfg);
}

SmartCrawlOptions GoldenOptions(const datagen::Scenario& s,
                                SelectionPolicy policy, match::ErMode er) {
  SmartCrawlOptions opt;
  opt.policy = policy;
  opt.local_text_fields = s.local_text_fields;
  opt.num_threads = 1;
  opt.er.mode = er;
  opt.er.jaccard_threshold = 0.6;
  return opt;
}

/// Order-sensitive digest of everything user-visible about a crawl (same
/// shape as golden_crawl_test.cc's).
uint64_t Fingerprint(const CrawlResult& r) {
  size_t h = 0x5c5c5c5cULL;
  for (const auto& it : r.iterations) {
    HashCombine(h, Fnv1a(it.query));
    HashCombine(h, it.page_size);
    HashCombine(h, std::bit_cast<uint64_t>(it.estimated_benefit));
    for (table::EntityId e : it.page_entities) HashCombine(h, e);
  }
  for (table::RecordId d : r.covered_local_ids) HashCombine(h, d);
  return h;
}

TEST(CrawlServiceTest, OneSessionReproducesFacadeForEveryCombo) {
  for (SelectionPolicy policy : kAllPolicies) {
    for (match::ErMode er : kAllErModes) {
      SCOPED_TRACE(PolicyName(policy) + " er=" +
                   std::to_string(static_cast<int>(er)));
      auto s = BuildGoldenScenario();
      ASSERT_TRUE(s.ok()) << s.status().ToString();
      auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
      const hidden::HiddenDatabase* oracle =
          policy == SelectionPolicy::kIdeal ? s->hidden.get() : nullptr;

      // Facade run — exactly what golden_crawl_test.cc pins.
      auto crawler = SmartCrawler::Create(
          &s->local, GoldenOptions(*s, policy, er), &sample, oracle);
      ASSERT_TRUE(crawler.ok()) << crawler.status().ToString();
      hidden::BudgetedInterface iface(s->hidden.get(), kBudget);
      auto facade = (*crawler)->Crawl(&iface, kBudget);
      ASSERT_TRUE(facade.ok()) << facade.status().ToString();

      // Service run over the SAME plan (the facade's session already used
      // it — immutability means a fresh session must see pristine state).
      CrawlServiceOptions sopt;
      sopt.num_threads = 1;
      sopt.shared_cache_capacity = 0;  // match the facade transport exactly
      CrawlService service(s->hidden.get(), sopt);
      SessionSpec spec;
      spec.plan = (*crawler)->shared_plan();
      spec.budget = kBudget;
      auto outcomes = service.RunAll({spec});
      ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
      ASSERT_EQ(outcomes->size(), 1u);
      const SessionOutcome& out = (*outcomes)[0];
      ASSERT_TRUE(out.status.ok()) << out.status.ToString();

      EXPECT_EQ(out.result.queries_issued, facade->queries_issued);
      EXPECT_EQ(out.result.covered_local_ids.size(),
                facade->covered_local_ids.size());
      EXPECT_EQ(out.result.stats.pq_recomputes,
                facade->stats.pq_recomputes);
      EXPECT_EQ(out.result.stopped_early, facade->stopped_early);
      EXPECT_EQ(Fingerprint(out.result), Fingerprint(*facade));
    }
  }
}

TEST(CrawlServiceTest, EightSessionsAreBitIdenticalAcrossThreadCounts) {
  auto s = BuildGoldenScenario();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
  auto plan_or =
      CrawlPlan::Build(&s->local,
                       GoldenOptions(*s, SelectionPolicy::kEstBiased,
                                     match::ErMode::kJaccard),
                       &sample);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  std::shared_ptr<const CrawlPlan> plan = std::move(plan_or).value();

  // Varying budgets make sessions finish in different rounds, exercising
  // the streaming finish path mid-drive.
  const size_t budgets[] = {5, 30, 12, 7, 30, 18, 25, 3};
  std::vector<SessionSpec> specs;
  for (size_t b : budgets) {
    SessionSpec spec;
    spec.plan = plan;
    spec.budget = b;
    specs.push_back(std::move(spec));
  }

  auto run = [&](unsigned threads) {
    CrawlServiceOptions sopt;
    sopt.num_threads = threads;  // shared cache on (default capacity)
    CrawlService service(s->hidden.get(), sopt);
    std::vector<size_t> finish_order;
    std::vector<SessionOutcome> outcomes(specs.size());
    Status st = service.Drive(specs, [&](size_t i, SessionOutcome out) {
      finish_order.push_back(i);
      outcomes[i] = std::move(out);
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    EXPECT_GT(service.shared_cache_stats()->hits, 0u);
    return std::make_pair(std::move(outcomes), std::move(finish_order));
  };

  auto [seq, seq_order] = run(1);
  auto [par, par_order] = run(4);
  EXPECT_EQ(seq_order, par_order);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_TRUE(seq[i].status.ok()) << seq[i].status.ToString();
    ASSERT_TRUE(par[i].status.ok()) << par[i].status.ToString();
    EXPECT_EQ(seq[i].result.queries_issued, par[i].result.queries_issued);
    EXPECT_EQ(Fingerprint(seq[i].result), Fingerprint(par[i].result));
  }
}

TEST(CrawlServiceTest, SharedCacheHitsAreMeteredFreeUnderDailyQuota) {
  auto s = BuildGoldenScenario();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto plan_or = CrawlPlan::Build(
      &s->local,
      GoldenOptions(*s, SelectionPolicy::kSimple, match::ErMode::kJaccard));
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  std::shared_ptr<const CrawlPlan> plan = std::move(plan_or).value();

  CrawlService service(s->hidden.get(), CrawlServiceOptions{});
  // Two tenants with identical plans and budgets, each behind its own
  // daily-quota meter. Phase A walks tenant 0 first each round, so tenant
  // 0 populates the shared cache and tenant 1 rides it for free.
  std::vector<SessionSpec> specs(2);
  for (SessionSpec& spec : specs) {
    spec.plan = plan;
    spec.budget = 20;
    spec.transport.daily_quota = 100;  // large enough to never reject
  }
  auto outcomes = service.RunAll(specs);
  ASSERT_TRUE(outcomes.ok()) << outcomes.status().ToString();
  ASSERT_EQ(outcomes->size(), 2u);
  const SessionOutcome& a = (*outcomes)[0];
  const SessionOutcome& b = (*outcomes)[1];
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();

  // Both tenants got full crawls...
  EXPECT_EQ(a.result.queries_issued, 20u);
  EXPECT_EQ(b.result.queries_issued, 20u);
  EXPECT_EQ(Fingerprint(a.result), Fingerprint(b.result));
  // ...but only tenant 0 paid the provider: every one of tenant 1's
  // queries was answered by the shared cache, below which its quota layer
  // saw no origin traffic.
  EXPECT_EQ(a.quota_used_today, 20u);
  EXPECT_EQ(b.quota_used_today, 0u);
  ASSERT_TRUE(service.shared_cache_stats().has_value());
  EXPECT_GE(service.shared_cache_stats()->hits, 20u);
}

TEST(CrawlServiceTest, PipelinedIsTheDefaultDriveMode) {
  // The ISSUE-10 contract: pipelining is on by default; the round-based
  // reference stays selectable. A default flip would silently change
  // what every caller (and bench baseline) measures, so pin it.
  CrawlServiceOptions defaults;
  EXPECT_EQ(defaults.drive_mode, DriveMode::kPipelined);
  EXPECT_EQ(defaults.shared_cache_shards, 8u);
}

TEST(CrawlServiceTest, FleetMatrixBitIdenticalAcrossModesThreadsShards) {
  // The headline determinism claim: pipelined vs round-based at {1,4}
  // worker threads x {1,8} cache shards x point/batched repair all
  // produce the same finish order, per-session results (bit for bit),
  // quota consumption and shared-cache counters. The reference for each
  // repair mode is round-based / 1 thread / 1 shard — the configuration
  // closest to the paper's sequential crawler.
  auto s = BuildGoldenScenario();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
  auto plan_or =
      CrawlPlan::Build(&s->local,
                       GoldenOptions(*s, SelectionPolicy::kEstBiased,
                                     match::ErMode::kJaccard),
                       &sample);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  std::shared_ptr<const CrawlPlan> plan = std::move(plan_or).value();

  // Varying budgets spread finishes across rounds (so the pipelined
  // mid-round finish staging is really exercised); per-tenant daily
  // quotas make quota_used_today a meaningful comparison axis.
  const size_t budgets[] = {5, 30, 12, 7, 30, 18, 25, 3};
  std::vector<SessionSpec> specs;
  for (size_t b : budgets) {
    SessionSpec spec;
    spec.plan = plan;
    spec.budget = b;
    spec.transport.daily_quota = 100;  // never rejects; meters deltas
    specs.push_back(std::move(spec));
  }

  struct RunResult {
    std::vector<SessionOutcome> outcomes;
    std::vector<size_t> finish_order;
    net::CacheStats cache;
  };
  auto run = [&](DriveMode mode, unsigned threads, size_t shards,
                 PqRepairMode repair) {
    CrawlServiceOptions sopt;
    sopt.drive_mode = mode;
    sopt.num_threads = threads;
    sopt.shared_cache_shards = shards;  // default capacity: no evictions
    sopt.pq_repair = repair;
    sopt.repair_threads =
        repair == PqRepairMode::kBatched && threads == 4 ? 2 : 1;
    CrawlService service(s->hidden.get(), sopt);
    RunResult rr;
    rr.outcomes.resize(specs.size());
    Status st = service.Drive(specs, [&](size_t i, SessionOutcome out) {
      rr.finish_order.push_back(i);
      rr.outcomes[i] = std::move(out);
    });
    EXPECT_TRUE(st.ok()) << st.ToString();
    rr.cache = *service.shared_cache_stats();
    return rr;
  };

  for (PqRepairMode repair : {PqRepairMode::kPoint, PqRepairMode::kBatched}) {
    RunResult ref = run(DriveMode::kRoundBased, 1, 1, repair);
    ASSERT_EQ(ref.finish_order.size(), specs.size());
    for (DriveMode mode : {DriveMode::kRoundBased, DriveMode::kPipelined}) {
      for (unsigned threads : {1u, 4u}) {
        for (size_t shards : {size_t{1}, size_t{8}}) {
          SCOPED_TRACE("repair=" +
                       std::to_string(static_cast<int>(repair)) + " mode=" +
                       std::to_string(static_cast<int>(mode)) +
                       " threads=" + std::to_string(threads) +
                       " shards=" + std::to_string(shards));
          RunResult got = run(mode, threads, shards, repair);
          EXPECT_EQ(got.finish_order, ref.finish_order);
          // Cache traffic is shard-count-invariant because the default
          // capacity never evicts on this workload.
          EXPECT_EQ(got.cache.hits, ref.cache.hits);
          EXPECT_EQ(got.cache.misses, ref.cache.misses);
          EXPECT_EQ(got.cache.evictions, 0u);
          ASSERT_EQ(got.outcomes.size(), ref.outcomes.size());
          for (size_t i = 0; i < ref.outcomes.size(); ++i) {
            SCOPED_TRACE("session " + std::to_string(i));
            ASSERT_TRUE(got.outcomes[i].status.ok())
                << got.outcomes[i].status.ToString();
            EXPECT_EQ(got.outcomes[i].result.queries_issued,
                      ref.outcomes[i].result.queries_issued);
            EXPECT_EQ(got.outcomes[i].quota_used_today,
                      ref.outcomes[i].quota_used_today);
            // pq_recomputes counts repair WORK, which by design differs
            // between point and batched — compare within the repair mode
            // only (the fingerprint pins the selected queries either way).
            EXPECT_EQ(got.outcomes[i].result.stats.pq_recomputes,
                      ref.outcomes[i].result.stats.pq_recomputes);
            EXPECT_EQ(Fingerprint(got.outcomes[i].result),
                      Fingerprint(ref.outcomes[i].result));
          }
        }
      }
    }
  }
}

TEST(CrawlServiceTest, ReusedServiceScratchIsStatelessAcrossRuns) {
  // One service driving two consecutive fleets reuses its RoundScratch
  // (and keeps its warm shared cache). Reuse must not leak state:
  // selections stay bit-identical, only the metering moves to the cache.
  auto s = BuildGoldenScenario();
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto plan_or = CrawlPlan::Build(
      &s->local,
      GoldenOptions(*s, SelectionPolicy::kSimple, match::ErMode::kJaccard));
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  std::shared_ptr<const CrawlPlan> plan = std::move(plan_or).value();

  std::vector<SessionSpec> specs(3);
  for (SessionSpec& spec : specs) {
    spec.plan = plan;
    spec.budget = 15;
    spec.transport.daily_quota = 100;
  }

  CrawlService service(s->hidden.get(), CrawlServiceOptions{});
  auto first = service.RunAll(specs);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = service.RunAll(specs);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    SCOPED_TRACE("session " + std::to_string(i));
    ASSERT_TRUE((*second)[i].status.ok()) << (*second)[i].status.ToString();
    EXPECT_EQ((*first)[i].result.queries_issued,
              (*second)[i].result.queries_issued);
    EXPECT_EQ(Fingerprint((*first)[i].result),
              Fingerprint((*second)[i].result));
  }
  // Run 2 was answered entirely out of the cache run 1 warmed, so its
  // tenants paid no quota at all — cross-RUN answer sharing, not just
  // cross-tenant.
  EXPECT_GT((*first)[0].quota_used_today, 0u);
  EXPECT_EQ((*second)[0].quota_used_today, 0u);
}

}  // namespace
}  // namespace smartcrawl::core

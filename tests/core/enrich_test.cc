#include "core/enrich.h"

#include <gtest/gtest.h>

namespace smartcrawl::core {
namespace {

table::Table LocalRestaurants() {
  table::Table t(table::Schema{{"name"}});
  EXPECT_TRUE(t.Append({"Thai Noodle House"}, 1).ok());
  EXPECT_TRUE(t.Append({"Steak House"}, 2).ok());
  EXPECT_TRUE(t.Append({"Unknown Palace"}, 3).ok());
  return t;
}

std::vector<table::Record> Crawled() {
  std::vector<table::Record> out;
  table::Record a;
  a.entity_id = 1;
  a.fields = {"Thai Noodle House", "4.5", "Phoenix"};
  table::Record b;
  b.entity_id = 2;
  b.fields = {"Steak House", "4.3", "Tempe"};
  out.push_back(a);
  out.push_back(b);
  return out;
}

TEST(EnrichTest, EntityOracleJoin) {
  auto local = LocalRestaurants();
  EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kEntityOracle;
  spec.import_fields = {{1, "rating"}, {2, "city"}};
  auto out = EnrichTable(local, Crawled(), spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->records_enriched, 2u);
  const auto& t = out->enriched;
  EXPECT_EQ(t.schema().field_names,
            (std::vector<std::string>{"name", "rating", "city"}));
  EXPECT_EQ(t.record(0).fields, (std::vector<std::string>{
                                    "Thai Noodle House", "4.5", "Phoenix"}));
  EXPECT_EQ(t.record(2).fields,
            (std::vector<std::string>{"Unknown Palace", "", ""}));
}

TEST(EnrichTest, JaccardJoinToleratesExtraHiddenFields) {
  auto local = LocalRestaurants();
  EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kJaccard;
  // Crawled records carry rating+city tokens the local side lacks; e.g.
  // "Steak House" vs {steak, house, 4, 3, tempe} has Jaccard 2/5.
  spec.er.jaccard_threshold = 0.4;
  spec.import_fields = {{1, "rating"}};
  auto out = EnrichTable(local, Crawled(), spec);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->records_enriched, 2u);
  EXPECT_EQ(out->enriched.record(0).fields[1], "4.5");
}

TEST(EnrichTest, ExactModeRequiresIdenticalTokens) {
  auto local = LocalRestaurants();
  EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kExact;
  spec.import_fields = {{1, "rating"}};
  auto out = EnrichTable(local, Crawled(), spec);
  ASSERT_TRUE(out.ok());
  // The crawled records carry extra fields (rating/city tokens), so their
  // documents differ from the local name-only documents.
  EXPECT_EQ(out->records_enriched, 0u);
}

TEST(EnrichTest, ExactModeMatchesIdenticalTokenSets) {
  // When the crawled record's text equals the local record's (module
  // field order/case), exact mode joins it.
  table::Table local(table::Schema{{"name"}});
  ASSERT_TRUE(local.Append({"Thai Noodle House"}, 1).ok());
  std::vector<table::Record> crawled;
  table::Record rec;
  rec.entity_id = 99;  // wrong entity id: exact mode must not care
  rec.fields = {"noodle HOUSE thai"};
  crawled.push_back(rec);

  EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kExact;
  spec.import_fields = {{0, "hidden_name"}};
  auto out = EnrichTable(local, crawled, spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->records_enriched, 1u);
  EXPECT_EQ(out->enriched.record(0).fields[1], "noodle HOUSE thai");
}

TEST(EnrichTest, RejectsEmptyImportList) {
  auto out = EnrichTable(LocalRestaurants(), Crawled(), EnrichmentSpec{});
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST(EnrichTest, RejectsDuplicateColumnName) {
  EnrichmentSpec spec;
  spec.import_fields = {{1, "name"}};  // collides with the local schema
  auto out = EnrichTable(LocalRestaurants(), Crawled(), spec);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsAlreadyExists());
}

TEST(EnrichTest, ImportIndexBeyondHiddenFieldsGivesEmpty) {
  auto local = LocalRestaurants();
  EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kEntityOracle;
  spec.import_fields = {{9, "bogus"}};
  auto out = EnrichTable(local, Crawled(), spec);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->enriched.record(0).fields[1], "");
}

}  // namespace
}  // namespace smartcrawl::core

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/smart_crawler.h"
#include "datagen/scenario.h"
#include "hidden/budget.h"
#include "sample/sampler.h"
#include "snapshot/format.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "util/hash.h"

/// Snapshot round-trip suite. Every test name starts with "Snapshot" so CI
/// can run exactly this suite with --gtest_filter='Snapshot*'.
///
/// Two layers:
///   * format layer (SnapshotFormat*): SnapshotWriter/SnapshotReader
///     contract — byte round-trips, typed views, rejection of malformed
///     files. Corruption must always surface as a Status, never as UB.
///   * plan layer (Snapshot/SnapshotGoldenTest, SnapshotPlan*): a
///     CrawlPlan serialized and mmap-loaded must crawl BIT-IDENTICALLY to
///     the freshly built plan on every policy × ER-mode combination of the
///     golden crawl suite.
namespace smartcrawl::core {
namespace {

struct Combo {
  SelectionPolicy policy;
  match::ErMode er;
};

constexpr Combo kAllCombos[] = {
    {SelectionPolicy::kSimple, match::ErMode::kEntityOracle},
    {SelectionPolicy::kSimple, match::ErMode::kExact},
    {SelectionPolicy::kSimple, match::ErMode::kJaccard},
    {SelectionPolicy::kBound, match::ErMode::kEntityOracle},
    {SelectionPolicy::kBound, match::ErMode::kExact},
    {SelectionPolicy::kBound, match::ErMode::kJaccard},
    {SelectionPolicy::kEstBiased, match::ErMode::kEntityOracle},
    {SelectionPolicy::kEstBiased, match::ErMode::kExact},
    {SelectionPolicy::kEstBiased, match::ErMode::kJaccard},
    {SelectionPolicy::kEstUnbiased, match::ErMode::kEntityOracle},
    {SelectionPolicy::kEstUnbiased, match::ErMode::kExact},
    {SelectionPolicy::kEstUnbiased, match::ErMode::kJaccard},
    {SelectionPolicy::kIdeal, match::ErMode::kEntityOracle},
    {SelectionPolicy::kIdeal, match::ErMode::kExact},
    {SelectionPolicy::kIdeal, match::ErMode::kJaccard},
};

constexpr size_t kBudget = 30;

/// Same scenario as the golden crawl suite (tests/core/golden_crawl_test.cc).
datagen::DblpScenarioConfig GoldenScenario() {
  datagen::DblpScenarioConfig cfg;
  cfg.corpus.corpus_size = 4000;
  cfg.corpus.db_community_fraction = 0.5;
  cfg.hidden_size = 1500;
  cfg.local_size = 250;
  cfg.top_k = 50;
  cfg.error_rate = 0.2;
  cfg.seed = 71;
  return cfg;
}

/// Order-sensitive digest of everything user-visible about a crawl (same
/// shape as the golden suite's fingerprint).
uint64_t Fingerprint(const CrawlResult& r) {
  size_t h = 0x5c5c5c5cULL;
  for (const auto& it : r.iterations) {
    HashCombine(h, Fnv1a(it.query));
    HashCombine(h, it.page_size);
    HashCombine(h, std::bit_cast<uint64_t>(it.estimated_benefit));
    for (table::EntityId e : it.page_entities) HashCombine(h, e);
  }
  for (table::RecordId d : r.covered_local_ids) HashCombine(h, d);
  return h;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Format layer.
// ---------------------------------------------------------------------------

TEST(SnapshotFormat, WriterReaderRoundTrip) {
  const std::string path = ::testing::TempDir() + "sc_fmt_roundtrip.snap";
  const std::vector<uint32_t> numbers = {1, 2, 3, 40000};
  const std::vector<std::byte> raw = {std::byte{0xde}, std::byte{0xad}};

  snapshot::SnapshotWriter w;
  w.AddTyped<uint32_t>(7, numbers);
  w.AddBytes(9, raw);
  w.AddBytes(11, {});  // zero-length sections are legal
  ASSERT_TRUE(w.WriteFile(path, /*build_fingerprint=*/0x1234).ok());

  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  snapshot::SnapshotReader& r = *reader_or;
  EXPECT_EQ(r.build_fingerprint(), 0x1234u);
  EXPECT_TRUE(r.Has(7));
  EXPECT_TRUE(r.Has(11));
  EXPECT_FALSE(r.Has(8));
  EXPECT_FALSE(r.SectionBytes(8).ok());

  auto typed_or = r.Typed<uint32_t>(7);
  ASSERT_TRUE(typed_or.ok()) << typed_or.status().ToString();
  ASSERT_EQ(typed_or->size(), numbers.size());
  for (size_t i = 0; i < numbers.size(); ++i) {
    EXPECT_EQ((*typed_or)[i], numbers[i]);
  }
  // Sections start 64-byte aligned in the mapping.
  EXPECT_EQ(std::bit_cast<uintptr_t>(typed_or->data()) %
                snapshot::kSectionAlign,
            0u);

  auto raw_or = r.SectionBytes(9);
  ASSERT_TRUE(raw_or.ok());
  ASSERT_EQ(raw_or->size(), 2u);
  EXPECT_EQ((*raw_or)[0], std::byte{0xde});

  auto empty_or = r.SectionBytes(11);
  ASSERT_TRUE(empty_or.ok());
  EXPECT_TRUE(empty_or->empty());
}

TEST(SnapshotFormat, WriterRejectsDuplicateSectionIds) {
  snapshot::SnapshotWriter w;
  const std::vector<std::byte> raw = {std::byte{1}};
  w.AddBytes(3, raw);
  w.AddBytes(3, raw);
  const std::string path = ::testing::TempDir() + "sc_fmt_dup.snap";
  Status st = w.WriteFile(path, 0);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("duplicate"), std::string::npos);
}

TEST(SnapshotFormat, TypedRejectsSizeMismatch) {
  const std::string path = ::testing::TempDir() + "sc_fmt_size.snap";
  const std::vector<std::byte> six(6, std::byte{0});
  snapshot::SnapshotWriter w;
  w.AddBytes(1, six);
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  EXPECT_FALSE(reader_or->Typed<uint32_t>(1).ok());  // 6 % 4 != 0
}

TEST(SnapshotFormat, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "sc_fmt_magic.snap";
  snapshot::SnapshotWriter w;
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GE(bytes.size(), sizeof(snapshot::SnapshotHeader));
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().ToString().find("magic"), std::string::npos);
}

TEST(SnapshotFormat, RejectsFutureVersion) {
  const std::string path = ::testing::TempDir() + "sc_fmt_version.snap";
  snapshot::SnapshotWriter w;
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  std::string bytes = ReadFileBytes(path);
  // Bump the version field, then re-seal the header checksum so the
  // version check (not the checksum check) is what rejects the file.
  const uint32_t future = snapshot::kFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof future);
  const uint64_t reseal = HashBytes64(
      bytes.data(), offsetof(snapshot::SnapshotHeader, header_checksum),
      snapshot::kChecksumSeed);
  std::memcpy(bytes.data() + offsetof(snapshot::SnapshotHeader,
                                      header_checksum),
              &reseal, sizeof reseal);
  WriteFileBytes(path, bytes);
  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().ToString().find("version"), std::string::npos);
}

TEST(SnapshotFormat, RejectsTamperedHeader) {
  const std::string path = ::testing::TempDir() + "sc_fmt_header.snap";
  snapshot::SnapshotWriter w;
  ASSERT_TRUE(w.WriteFile(path, /*build_fingerprint=*/77).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[24] ^= 0x01;  // build_fingerprint field, checksum NOT re-sealed
  WriteFileBytes(path, bytes);
  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().ToString().find("header checksum"),
            std::string::npos);
}

TEST(SnapshotFormat, RejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "sc_fmt_trunc.snap";
  const std::vector<std::byte> payload(100, std::byte{7});
  snapshot::SnapshotWriter w;
  w.AddBytes(1, payload);
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_FALSE(snapshot::SnapshotReader::Open(path).ok());
  WriteFileBytes(path, bytes.substr(0, 10));  // shorter than the header
  EXPECT_FALSE(snapshot::SnapshotReader::Open(path).ok());
}

TEST(SnapshotFormat, RejectsCorruptedPayload) {
  const std::string path = ::testing::TempDir() + "sc_fmt_corrupt.snap";
  const std::vector<std::byte> payload(100, std::byte{7});
  snapshot::SnapshotWriter w;
  w.AddBytes(1, payload);
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  std::string bytes = ReadFileBytes(path);
  // Locate the payload through the section table rather than guessing at
  // the layout.
  snapshot::SectionEntry entry;
  std::memcpy(&entry, bytes.data() + sizeof(snapshot::SnapshotHeader),
              sizeof entry);
  ASSERT_EQ(entry.id, 1u);
  ASSERT_LT(entry.offset, bytes.size());
  bytes[entry.offset] ^= 0x40;
  WriteFileBytes(path, bytes);
  auto reader_or = snapshot::SnapshotReader::Open(path);
  ASSERT_FALSE(reader_or.ok());
  EXPECT_NE(reader_or.status().ToString().find("checksum mismatch"),
            std::string::npos);
}

TEST(SnapshotFormat, RejectsMissingFile) {
  auto reader_or = snapshot::SnapshotReader::Open(
      ::testing::TempDir() + "sc_fmt_does_not_exist.snap");
  EXPECT_FALSE(reader_or.ok());
}

// ---------------------------------------------------------------------------
// Plan layer.
// ---------------------------------------------------------------------------

TEST(SnapshotPlan, RejectsFormatValidButNotAPlan) {
  // A structurally valid snapshot missing the plan's sections must fail
  // with a Status, not crash.
  const std::string path = ::testing::TempDir() + "sc_plan_notaplan.snap";
  const std::vector<std::byte> payload(8, std::byte{0});
  snapshot::SnapshotWriter w;
  w.AddBytes(999, payload);
  ASSERT_TRUE(w.WriteFile(path, 0).ok());
  auto plan_or = CrawlPlan::LoadSnapshot(path);
  EXPECT_FALSE(plan_or.ok());
}

class SnapshotGoldenTest : public ::testing::TestWithParam<Combo> {};

TEST_P(SnapshotGoldenTest, LoadedPlanCrawlsBitIdentically) {
  const Combo& combo = GetParam();
  auto s = datagen::BuildDblpScenario(GoldenScenario());
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);

  SmartCrawlOptions opt;
  opt.policy = combo.policy;
  opt.local_text_fields = s->local_text_fields;
  opt.num_threads = 1;
  opt.er.mode = combo.er;
  opt.er.jaccard_threshold = 0.6;
  const SmartCrawlOptions opt_copy = opt;
  const hidden::HiddenDatabase* oracle =
      combo.policy == SelectionPolicy::kIdeal ? s->hidden.get() : nullptr;

  auto built_or =
      SmartCrawler::Create(&s->local, std::move(opt), &sample, oracle);
  ASSERT_TRUE(built_or.ok()) << built_or.status().ToString();
  SmartCrawler& built = *built_or.value();

  const std::string path = ::testing::TempDir() + "sc_golden_" +
                           std::to_string(static_cast<int>(combo.policy)) +
                           "_" + std::to_string(static_cast<int>(combo.er)) +
                           ".snap";
  ASSERT_TRUE(built.plan().Serialize(path).ok());

  // Load with the expectation overload: same table + same options must be
  // accepted.
  auto plan_or = CrawlPlan::LoadSnapshot(path, &s->local, opt_copy);
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  auto loaded_or = SmartCrawler::Adopt(
      std::shared_ptr<const CrawlPlan>(std::move(plan_or).value()));
  ASSERT_TRUE(loaded_or.ok());
  SmartCrawler& loaded = *loaded_or.value();

  hidden::BudgetedInterface iface_a(s->hidden.get(), kBudget);
  auto r_built = built.Crawl(&iface_a, kBudget);
  ASSERT_TRUE(r_built.ok()) << r_built.status().ToString();

  hidden::BudgetedInterface iface_b(s->hidden.get(), kBudget);
  auto r_loaded = loaded.Crawl(&iface_b, kBudget);
  ASSERT_TRUE(r_loaded.ok()) << r_loaded.status().ToString();

  EXPECT_EQ(r_loaded->queries_issued, r_built->queries_issued);
  EXPECT_EQ(r_loaded->covered_local_ids.size(),
            r_built->covered_local_ids.size());
  EXPECT_EQ(r_loaded->stats.pq_recomputes, r_built->stats.pq_recomputes);
  EXPECT_EQ(r_loaded->stopped_early, r_built->stopped_early);
  EXPECT_EQ(Fingerprint(*r_loaded), Fingerprint(*r_built));
}

INSTANTIATE_TEST_SUITE_P(
    Snapshot, SnapshotGoldenTest, ::testing::ValuesIn(kAllCombos),
    [](const ::testing::TestParamInfo<Combo>& pinfo) {
      std::string name = PolicyName(pinfo.param.policy);
      switch (pinfo.param.er) {
        case match::ErMode::kEntityOracle: name += "Oracle"; break;
        case match::ErMode::kExact: name += "Exact"; break;
        case match::ErMode::kJaccard: name += "Jaccard"; break;
      }
      std::string out;
      for (char c : name) {
        if (c != '-') out += c;  // gtest names must be alphanumeric
      }
      return out;
    });

/// One scenario, serialized twice and re-serialized after a load: all
/// three files must be byte-identical. This pins serialization
/// determinism AND proves the loaded plan lost nothing.
TEST(SnapshotPlan, SerializationIsDeterministicAndLossless) {
  auto s = datagen::BuildDblpScenario(GoldenScenario());
  ASSERT_TRUE(s.ok());
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
  SmartCrawlOptions opt;
  opt.policy = SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  opt.num_threads = 1;
  opt.er.mode = match::ErMode::kJaccard;
  opt.er.jaccard_threshold = 0.6;
  auto crawler_or = SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler_or.ok());

  const std::string dir = ::testing::TempDir();
  ASSERT_TRUE(crawler_or.value()->plan().Serialize(dir + "sc_a.snap").ok());
  ASSERT_TRUE(crawler_or.value()->plan().Serialize(dir + "sc_b.snap").ok());
  const std::string a = ReadFileBytes(dir + "sc_a.snap");
  EXPECT_EQ(a, ReadFileBytes(dir + "sc_b.snap"));

  auto plan_or = CrawlPlan::LoadSnapshot(dir + "sc_a.snap");
  ASSERT_TRUE(plan_or.ok()) << plan_or.status().ToString();
  ASSERT_TRUE((*plan_or)->Serialize(dir + "sc_c.snap").ok());
  EXPECT_EQ(a, ReadFileBytes(dir + "sc_c.snap"));
}

/// Thread count is a performance knob, not a build parameter: a snapshot
/// built at one thread count must load under another.
TEST(SnapshotPlan, FingerprintIgnoresThreadCount) {
  auto s = datagen::BuildDblpScenario(GoldenScenario());
  ASSERT_TRUE(s.ok());
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
  SmartCrawlOptions opt;
  opt.policy = SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  opt.num_threads = 4;
  opt.er.mode = match::ErMode::kJaccard;
  opt.er.jaccard_threshold = 0.6;
  SmartCrawlOptions opt1 = opt;
  opt1.num_threads = 1;
  EXPECT_EQ(CrawlPlan::BuildFingerprint(s->local, opt),
            CrawlPlan::BuildFingerprint(s->local, opt1));

  auto crawler_or = SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler_or.ok());
  const std::string path = ::testing::TempDir() + "sc_threads.snap";
  ASSERT_TRUE(crawler_or.value()->plan().Serialize(path).ok());
  EXPECT_TRUE(CrawlPlan::LoadSnapshot(path, &s->local, opt1).ok());
}

/// Any real option or dataset difference must be rejected.
TEST(SnapshotPlan, RejectsMismatchedExpectation) {
  auto s = datagen::BuildDblpScenario(GoldenScenario());
  ASSERT_TRUE(s.ok());
  auto sample = sample::BernoulliSample(*s->hidden, 0.025, 13);
  SmartCrawlOptions opt;
  opt.policy = SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  opt.num_threads = 1;
  opt.er.mode = match::ErMode::kJaccard;
  opt.er.jaccard_threshold = 0.6;
  const SmartCrawlOptions opt_copy = opt;
  auto crawler_or = SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler_or.ok());
  const std::string path = ::testing::TempDir() + "sc_mismatch.snap";
  ASSERT_TRUE(crawler_or.value()->plan().Serialize(path).ok());

  SmartCrawlOptions other = opt_copy;
  other.policy = SelectionPolicy::kEstUnbiased;
  auto plan_or = CrawlPlan::LoadSnapshot(path, &s->local, other);
  ASSERT_FALSE(plan_or.ok());
  EXPECT_NE(plan_or.status().ToString().find("fingerprint"),
            std::string::npos);

  SmartCrawlOptions jac = opt_copy;
  jac.er.jaccard_threshold = 0.7;
  EXPECT_FALSE(CrawlPlan::LoadSnapshot(path, &s->local, jac).ok());
}

}  // namespace
}  // namespace smartcrawl::core

#include "table/table.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace smartcrawl::table {
namespace {

Table MakeRestaurantTable() {
  Table t(Schema{{"name", "rating"}});
  EXPECT_TRUE(t.Append({"Thai Noodle House", "4.5"}, 1).ok());
  EXPECT_TRUE(t.Append({"Noodle House", "4.0"}, 2).ok());
  EXPECT_TRUE(t.Append({"Thai House", "4.1"}, 3).ok());
  return t;
}

TEST(SchemaTest, FieldIndex) {
  Schema s{{"a", "b", "c"}};
  EXPECT_EQ(*s.FieldIndex("b"), 1u);
  EXPECT_FALSE(s.FieldIndex("missing").has_value());
  EXPECT_EQ(s.num_fields(), 3u);
}

TEST(TableTest, AppendAssignsSequentialIds) {
  Table t = MakeRestaurantTable();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.record(0).id, 0u);
  EXPECT_EQ(t.record(2).id, 2u);
  EXPECT_EQ(t.record(1).entity_id, 2u);
}

TEST(TableTest, AppendRejectsWrongArity) {
  Table t(Schema{{"a", "b"}});
  auto r = t.Append({"only-one"});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TableTest, ConcatenatedTextAllFields) {
  Table t = MakeRestaurantTable();
  EXPECT_EQ(t.ConcatenatedText(0), "Thai Noodle House 4.5");
}

TEST(TableTest, ConcatenatedTextSelectedFields) {
  Table t = MakeRestaurantTable();
  auto r = t.ConcatenatedText(0, {"name"});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "Thai Noodle House");
  EXPECT_FALSE(t.ConcatenatedText(0, {"nope"}).ok());
}

TEST(TableTest, BuildDocumentsSharesDictionary) {
  Table t = MakeRestaurantTable();
  text::TermDictionary dict;
  auto docs = t.BuildDocuments(dict, {"name"});
  ASSERT_EQ(docs.size(), 3u);
  // "house" appears in all three names and must map to one TermId.
  auto house = dict.Lookup("house");
  ASSERT_TRUE(house.has_value());
  for (const auto& d : docs) EXPECT_TRUE(d.Contains(*house));
}

TEST(TableTest, DeduplicateRemovesTokenDuplicates) {
  Table t(Schema{{"name"}});
  ASSERT_TRUE(t.Append({"Thai House"}, 1).ok());
  ASSERT_TRUE(t.Append({"thai HOUSE"}, 2).ok());   // same token set
  ASSERT_TRUE(t.Append({"House Thai"}, 3).ok());   // same token set
  ASSERT_TRUE(t.Append({"Steak House"}, 4).ok());
  size_t removed = t.Deduplicate();
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(t.size(), 2u);
  // Ids reassigned densely.
  EXPECT_EQ(t.record(0).id, 0u);
  EXPECT_EQ(t.record(1).id, 1u);
  EXPECT_EQ(t.record(1).entity_id, 4u);  // first occurrences kept
}

TEST(TableTest, CsvRoundTrip) {
  Table t = MakeRestaurantTable();
  std::string path =
      (std::filesystem::temp_directory_path() / "sc_table_test.csv").string();
  ASSERT_TRUE(t.ToCsvFile(path).ok());
  auto back = Table::FromCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(back->schema().field_names,
            (std::vector<std::string>{"name", "rating"}));
  EXPECT_EQ(back->record(0).fields[0], "Thai Noodle House");
  // Entity ids are not persisted in CSV.
  EXPECT_EQ(back->record(0).entity_id, kUnknownEntity);
  std::remove(path.c_str());
}

TEST(TableTest, FromCsvEmptyFileFails) {
  std::string path =
      (std::filesystem::temp_directory_path() / "sc_empty.csv").string();
  { std::FILE* f = std::fopen(path.c_str(), "w"); std::fclose(f); }
  auto back = Table::FromCsvFile(path);
  EXPECT_FALSE(back.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smartcrawl::table

#include <algorithm>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/baseline_crawlers.h"
#include "core/enrich.h"
#include "core/metrics.h"
#include "core/smart_crawler.h"
#include "datagen/scenario.h"
#include "hidden/budget.h"
#include "sample/sampler.h"
#include "text/tokenizer.h"

/// Full-pipeline integration tests: scenario -> (query-derived) sample ->
/// crawl -> enrichment, including the Yelp-style non-conjunctive setup of
/// paper Sec. 7.3.

namespace smartcrawl {
namespace {

TEST(EndToEndTest, DblpEnrichmentPipeline) {
  datagen::DblpScenarioConfig cfg;
  cfg.corpus.corpus_size = 5000;
  cfg.corpus.db_community_fraction = 0.5;
  cfg.hidden_size = 2000;
  cfg.local_size = 250;
  cfg.top_k = 50;
  cfg.seed = 3;
  auto s = datagen::BuildDblpScenario(cfg);
  ASSERT_TRUE(s.ok());

  auto sample = sample::BernoulliSample(*s->hidden, 0.02, 9);

  core::SmartCrawlOptions opt;
  opt.policy = core::SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  opt.keep_crawled_records = true;
  auto crawler = core::SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler.ok()) << crawler.status();
  hidden::BudgetedInterface iface(s->hidden.get(), 60);
  auto crawl = crawler.value()->Crawl(&iface, 60);
  ASSERT_TRUE(crawl.ok());
  size_t coverage = core::FinalCoverage(s->local, *crawl);
  EXPECT_GT(coverage, 100u);

  // Enrich the local table with the hidden "year" attribute (index 3).
  core::EnrichmentSpec spec;
  spec.er.mode = match::ErMode::kEntityOracle;
  spec.import_fields = {{3, "year_from_hidden"}};
  auto enriched = core::EnrichTable(s->local, crawl->crawled_records, spec);
  ASSERT_TRUE(enriched.ok());
  EXPECT_EQ(enriched->records_enriched, coverage);
  EXPECT_EQ(enriched->enriched.schema().field_names.back(),
            "year_from_hidden");
  // Imported years must equal the hidden twins' years.
  size_t checked = 0;
  for (const auto& rec : enriched->enriched.records()) {
    if (rec.fields.back().empty()) continue;
    const auto& local_rec = s->local.record(rec.id);
    EXPECT_EQ(rec.fields[3], local_rec.fields[3]);  // same entity copy
    ++checked;
  }
  EXPECT_EQ(checked, coverage);
}

TEST(EndToEndTest, YelpStylePipelineWithQueryDerivedSample) {
  datagen::YelpScenarioConfig cfg;
  cfg.corpus.corpus_size = 6000;
  cfg.local_size = 400;
  cfg.error_rate = 0.15;
  cfg.seed = 8;
  auto s = datagen::BuildYelpScenario(cfg);
  ASSERT_TRUE(s.ok());

  // Build the sample through the keyword interface, as in Sec. 7.1.2.
  std::vector<std::string> pool;
  {
    std::unordered_set<std::string> kw;
    text::TokenizerOptions tok;
    for (const auto& rec : s->local.records()) {
      for (size_t f = 0; f < rec.fields.size(); ++f) {
        for (auto& w : text::Tokenize(rec.fields[f], tok)) kw.insert(w);
      }
    }
    pool.assign(kw.begin(), kw.end());
    std::sort(pool.begin(), pool.end());
  }
  sample::KeywordSamplerOptions sopt;
  sopt.target_sample_size = 60;
  sopt.seed = 21;
  auto sample_or = sample::KeywordSample(s->hidden.get(), pool, sopt);
  ASSERT_TRUE(sample_or.ok()) << sample_or.status();

  core::SmartCrawlOptions opt;
  opt.policy = core::SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  auto crawler =
      core::SmartCrawler::Create(&s->local, std::move(opt), &sample_or.value());
  ASSERT_TRUE(crawler.ok()) << crawler.status();
  s->hidden->ResetQueryCounter();
  hidden::BudgetedInterface iface(s->hidden.get(), 150);
  auto crawl = crawler.value()->Crawl(&iface, 150);
  ASSERT_TRUE(crawl.ok());

  size_t coverage = core::FinalCoverage(s->local, *crawl);
  double recall = core::RelativeCoverage(coverage, s->num_matchable);
  // Non-conjunctive interface + dirty names: still substantial recall.
  EXPECT_GT(recall, 0.3);
}

TEST(EndToEndTest, SmartOutperformsNaivePerQueryOnDirtyData) {
  datagen::DblpScenarioConfig cfg;
  cfg.corpus.corpus_size = 5000;
  cfg.corpus.db_community_fraction = 0.5;
  cfg.hidden_size = 2000;
  cfg.local_size = 300;
  cfg.top_k = 50;
  cfg.error_rate = 0.5;  // heavy errors
  cfg.seed = 12;
  auto s = datagen::BuildDblpScenario(cfg);
  ASSERT_TRUE(s.ok());
  auto sample = sample::BernoulliSample(*s->hidden, 0.02, 2);

  const size_t budget = 60;
  core::SmartCrawlOptions opt;
  opt.policy = core::SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  auto crawler = core::SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler.ok()) << crawler.status();
  hidden::BudgetedInterface i1(s->hidden.get(), budget);
  auto smart = crawler.value()->Crawl(&i1, budget);
  ASSERT_TRUE(smart.ok());

  core::NaiveCrawlOptions nopt;
  nopt.query_fields = s->local_text_fields;
  hidden::BudgetedInterface i2(s->hidden.get(), budget);
  auto naive = core::NaiveCrawl(s->local, &i2, budget, nopt);
  ASSERT_TRUE(naive.ok());

  // Half the titles are corrupted: Naive's full-record queries fail on
  // them; SmartCrawl's shared (shorter) queries are far more robust.
  EXPECT_GT(core::FinalCoverage(s->local, *smart),
            core::FinalCoverage(s->local, *naive));
}

}  // namespace
}  // namespace smartcrawl

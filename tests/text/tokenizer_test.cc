#include "text/tokenizer.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace smartcrawl::text {
namespace {

TEST(TokenizerTest, BasicSplitAndLowercase) {
  auto toks = Tokenize("Thai Noodle House");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0], "thai");
  EXPECT_EQ(toks[1], "noodle");
  EXPECT_EQ(toks[2], "house");
}

TEST(TokenizerTest, PunctuationSeparates) {
  auto toks = Tokenize("data-driven,systems;  (2019)");
  EXPECT_EQ(toks, (std::vector<std::string>{"data", "driven", "systems",
                                            "2019"}));
}

TEST(TokenizerTest, StopwordsRemovedByDefault) {
  auto toks = Tokenize("The Lotus of Siam");
  EXPECT_EQ(toks, (std::vector<std::string>{"lotus", "siam"}));
}

TEST(TokenizerTest, StopwordsKeptWhenDisabled) {
  TokenizerOptions opt;
  opt.remove_stopwords = false;
  auto toks = Tokenize("The Lotus of Siam", opt);
  EXPECT_EQ(toks, (std::vector<std::string>{"the", "lotus", "of", "siam"}));
}

TEST(TokenizerTest, CaseSensitiveMode) {
  TokenizerOptions opt;
  opt.lowercase = false;
  opt.remove_stopwords = false;
  auto toks = Tokenize("Thai HOUSE", opt);
  EXPECT_EQ(toks, (std::vector<std::string>{"Thai", "HOUSE"}));
}

TEST(TokenizerTest, DigitsKeptByDefault) {
  auto toks = Tokenize("room 42b");
  EXPECT_EQ(toks, (std::vector<std::string>{"room", "42b"}));
}

TEST(TokenizerTest, DigitsDroppedWhenDisabled) {
  TokenizerOptions opt;
  opt.keep_digits = false;
  auto toks = Tokenize("room 42b 2019", opt);
  EXPECT_EQ(toks, (std::vector<std::string>{"room", "b"}));
}

TEST(TokenizerTest, MinTokenLength) {
  TokenizerOptions opt;
  opt.min_token_length = 3;
  auto toks = Tokenize("go to the big db lab", opt);
  EXPECT_EQ(toks, (std::vector<std::string>{"big", "lab"}));
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("  \t\n ").empty());
  EXPECT_TRUE(Tokenize("--- ;;; ...").empty());
}

TEST(TokenizerTest, DuplicatesPreserved) {
  auto toks = Tokenize("house house house");
  EXPECT_EQ(toks.size(), 3u);
}

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("of"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_FALSE(IsStopword("database"));
  EXPECT_FALSE(IsStopword("noodle"));
}

TEST(StopwordsTest, MatchingIsExactLowercase) {
  // The tokenizer lowercases before the check; the raw list is lowercase.
  EXPECT_FALSE(IsStopword("The"));
}

}  // namespace
}  // namespace smartcrawl::text

#include "text/document.h"

#include <gtest/gtest.h>

namespace smartcrawl::text {
namespace {

TEST(DocumentTest, SortsAndDeduplicates) {
  Document d({5, 1, 3, 1, 5});
  EXPECT_EQ(d.terms(), (std::vector<TermId>{1, 3, 5}));
  EXPECT_EQ(d.size(), 3u);
}

TEST(DocumentTest, FromTextInterns) {
  TermDictionary dict;
  Document d = Document::FromText("Thai Noodle House noodle", dict);
  EXPECT_EQ(d.size(), 3u);  // noodle deduplicated
  EXPECT_TRUE(d.Contains(*dict.Lookup("thai")));
  EXPECT_TRUE(d.Contains(*dict.Lookup("noodle")));
  EXPECT_TRUE(d.Contains(*dict.Lookup("house")));
}

TEST(DocumentTest, FromTextFrozenDropsUnknown) {
  TermDictionary dict;
  dict.Intern("thai");
  dict.Intern("house");
  Document d = Document::FromTextFrozen("Thai Steak House", dict);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_FALSE(dict.Lookup("steak").has_value());  // dictionary untouched
}

TEST(DocumentTest, ContainsAllConjunctiveSemantics) {
  TermDictionary dict;
  Document d = Document::FromText("progressive deep web crawling", dict);
  std::vector<TermId> q1 = {*dict.Lookup("deep"), *dict.Lookup("web")};
  std::sort(q1.begin(), q1.end());
  EXPECT_TRUE(d.ContainsAll(q1));

  TermId other = dict.Intern("shallow");
  std::vector<TermId> q2 = {*dict.Lookup("deep"), other};
  std::sort(q2.begin(), q2.end());
  EXPECT_FALSE(d.ContainsAll(q2));
}

TEST(DocumentTest, ContainsAllEmptyQueryIsTrue) {
  Document d({1, 2});
  EXPECT_TRUE(d.ContainsAll({}));
}

TEST(DocumentTest, ContainsAllOnEmptyDocument) {
  Document d;
  EXPECT_FALSE(d.ContainsAll({1}));
  EXPECT_TRUE(d.ContainsAll({}));
}

TEST(DocumentTest, IntersectionSize) {
  Document a({1, 2, 3, 4});
  Document b({3, 4, 5});
  EXPECT_EQ(a.IntersectionSize(b), 2u);
  EXPECT_EQ(b.IntersectionSize(a), 2u);
  EXPECT_EQ(a.IntersectionSize(Document{}), 0u);
}

TEST(DocumentTest, Jaccard) {
  Document a({1, 2, 3});
  Document b({2, 3, 4});
  EXPECT_DOUBLE_EQ(a.Jaccard(b), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(a), 1.0);
  EXPECT_DOUBLE_EQ(a.Jaccard(Document{}), 0.0);
  EXPECT_DOUBLE_EQ(Document{}.Jaccard(Document{}), 1.0);
}

TEST(DocumentTest, EqualityIsSetEquality) {
  EXPECT_EQ(Document({3, 1, 2}), Document({1, 2, 3}));
  EXPECT_FALSE(Document({1, 2}) == Document({1, 2, 3}));
}

}  // namespace
}  // namespace smartcrawl::text

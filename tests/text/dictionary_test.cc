#include "text/dictionary.h"

#include <gtest/gtest.h>

namespace smartcrawl::text {
namespace {

TEST(DictionaryTest, InternAssignsDenseIds) {
  TermDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, TermOfRoundTrips) {
  TermDictionary dict;
  TermId a = dict.Intern("noodle");
  TermId b = dict.Intern("house");
  EXPECT_EQ(dict.TermOf(a), "noodle");
  EXPECT_EQ(dict.TermOf(b), "house");
}

TEST(DictionaryTest, LookupMissing) {
  TermDictionary dict;
  dict.Intern("x");
  EXPECT_FALSE(dict.Lookup("y").has_value());
  EXPECT_EQ(*dict.Lookup("x"), 0u);
}

TEST(DictionaryTest, InternAllAndLookupAll) {
  TermDictionary dict;
  auto ids = dict.InternAll({"a", "b", "a"});
  EXPECT_EQ(ids, (std::vector<TermId>{0, 1, 0}));
  auto looked = dict.LookupAll({"b", "missing", "a"});
  EXPECT_EQ(looked[0], 1u);
  EXPECT_EQ(looked[1], kInvalidTermId);
  EXPECT_EQ(looked[2], 0u);
}

TEST(DictionaryTest, ManyTermsStayConsistent) {
  TermDictionary dict;
  for (int i = 0; i < 5000; ++i) {
    dict.Intern("term" + std::to_string(i));
  }
  EXPECT_EQ(dict.size(), 5000u);
  for (int i = 0; i < 5000; i += 371) {
    std::string t = "term" + std::to_string(i);
    ASSERT_TRUE(dict.Lookup(t).has_value());
    EXPECT_EQ(dict.TermOf(*dict.Lookup(t)), t);
  }
}

}  // namespace
}  // namespace smartcrawl::text

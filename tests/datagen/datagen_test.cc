#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/dblp_gen.h"
#include "datagen/error_inject.h"
#include "datagen/vocabulary.h"
#include "datagen/yelp_gen.h"
#include "text/stopwords.h"
#include "util/string_util.h"

namespace smartcrawl::datagen {
namespace {

TEST(VocabularyTest, DistinctWords) {
  auto words = GenerateVocabulary(2000, 1);
  std::unordered_set<std::string> s(words.begin(), words.end());
  EXPECT_EQ(s.size(), 2000u);
}

TEST(VocabularyTest, Deterministic) {
  EXPECT_EQ(GenerateVocabulary(100, 5), GenerateVocabulary(100, 5));
  EXPECT_NE(GenerateVocabulary(100, 5), GenerateVocabulary(100, 6));
}

TEST(VocabularyTest, NoStopwordCollisions) {
  for (const auto& w : GenerateVocabulary(3000, 9)) {
    EXPECT_FALSE(text::IsStopword(w)) << w;
  }
}

TEST(VocabularyTest, Capitalize) {
  EXPECT_EQ(Capitalize("noodle"), "Noodle");
  EXPECT_EQ(Capitalize("Noodle"), "Noodle");
  EXPECT_EQ(Capitalize(""), "");
}

TEST(DblpGenTest, GeneratesRequestedSizeWithSchema) {
  DblpOptions opt;
  opt.corpus_size = 1000;
  table::Table t = GenerateDblpCorpus(opt);
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_EQ(t.schema().field_names,
            (std::vector<std::string>{"title", "venue", "authors", "year"}));
}

TEST(DblpGenTest, EntityIdsAreRowIndices) {
  DblpOptions opt;
  opt.corpus_size = 50;
  table::Table t = GenerateDblpCorpus(opt);
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(t.record(static_cast<table::RecordId>(i)).entity_id, i);
  }
}

TEST(DblpGenTest, Deterministic) {
  DblpOptions opt;
  opt.corpus_size = 200;
  table::Table a = GenerateDblpCorpus(opt);
  table::Table b = GenerateDblpCorpus(opt);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(static_cast<table::RecordId>(i)).fields,
              b.record(static_cast<table::RecordId>(i)).fields);
  }
}

TEST(DblpGenTest, CommunityFractionRoughlyHolds) {
  DblpOptions opt;
  opt.corpus_size = 5000;
  opt.db_community_fraction = 0.3;
  table::Table t = GenerateDblpCorpus(opt);
  size_t community = 0;
  for (const auto& rec : t.records()) {
    if (InDbCommunity(rec, t)) ++community;
  }
  EXPECT_NEAR(static_cast<double>(community) / 5000.0, 0.3, 0.03);
}

TEST(DblpGenTest, YearsWithinRange) {
  DblpOptions opt;
  opt.corpus_size = 500;
  opt.min_year = 2000;
  opt.max_year = 2005;
  table::Table t = GenerateDblpCorpus(opt);
  auto idx = *t.schema().FieldIndex("year");
  for (const auto& rec : t.records()) {
    int y = std::stoi(rec.fields[idx]);
    EXPECT_GE(y, 2000);
    EXPECT_LE(y, 2005);
  }
}

TEST(DblpGenTest, TitleWordFrequenciesAreSkewed) {
  DblpOptions opt;
  opt.corpus_size = 3000;
  table::Table t = GenerateDblpCorpus(opt);
  auto idx = *t.schema().FieldIndex("title");
  std::unordered_map<std::string, size_t> freq;
  for (const auto& rec : t.records()) {
    for (const auto& w : SplitWhitespace(ToLower(rec.fields[idx]))) {
      ++freq[w];
    }
  }
  size_t max_freq = 0, total = 0;
  for (const auto& [w, f] : freq) {
    max_freq = std::max(max_freq, f);
    total += f;
  }
  // Zipf head: the most common title word should take a clearly
  // disproportionate share of occurrences.
  EXPECT_GT(static_cast<double>(max_freq) / static_cast<double>(total),
            0.01);
}

TEST(YelpGenTest, GeneratesBusinesses) {
  YelpOptions opt;
  opt.corpus_size = 800;
  table::Table t = GenerateYelpCorpus(opt);
  EXPECT_EQ(t.size(), 800u);
  EXPECT_EQ(t.schema().field_names,
            (std::vector<std::string>{"name", "city", "category", "rating"}));
  auto rating_idx = *t.schema().FieldIndex("rating");
  for (const auto& rec : t.records()) {
    double r = std::stod(rec.fields[rating_idx]);
    EXPECT_GE(r, 1.0);
    EXPECT_LE(r, 5.0);
  }
}

TEST(YelpGenTest, SharedNameSuffixesExist) {
  YelpOptions opt;
  opt.corpus_size = 2000;
  table::Table t = GenerateYelpCorpus(opt);
  auto name_idx = *t.schema().FieldIndex("name");
  size_t with_house = 0;
  for (const auto& rec : t.records()) {
    if (EndsWith(rec.fields[name_idx], "House")) ++with_house;
  }
  // 15 suffixes at 70% suffix rate -> each suffix on ~4-5% of names.
  EXPECT_GT(with_house, 20u);
}

TEST(ErrorInjectTest, CorruptsRequestedFraction) {
  YelpOptions opt;
  opt.corpus_size = 1000;
  table::Table t = GenerateYelpCorpus(opt);
  table::Table orig = t;
  ErrorInjectOptions err;
  err.error_rate = 0.2;
  err.target_field = "name";
  err.seed = 3;
  auto report = InjectErrors(&t, err);
  EXPECT_NEAR(static_cast<double>(report.records_corrupted), 200.0, 10.0);
  EXPECT_EQ(report.words_dropped + report.words_added + report.words_replaced,
            report.records_corrupted);
  // Ops are chosen ~uniformly.
  EXPECT_GT(report.words_dropped, 30u);
  EXPECT_GT(report.words_added, 30u);
  EXPECT_GT(report.words_replaced, 30u);
  // Only the name field changes.
  auto name_idx = *t.schema().FieldIndex("name");
  size_t changed = 0;
  for (size_t i = 0; i < t.size(); ++i) {
    const auto& a = t.record(static_cast<table::RecordId>(i));
    const auto& b = orig.record(static_cast<table::RecordId>(i));
    for (size_t f = 0; f < a.fields.size(); ++f) {
      if (f == name_idx) continue;
      EXPECT_EQ(a.fields[f], b.fields[f]);
    }
    if (a.fields[name_idx] != b.fields[name_idx]) ++changed;
  }
  // A dropped word from a 1-word name can produce an empty name; a replace
  // may coincide — but nearly all corruptions change the text.
  EXPECT_GE(changed + 5, report.records_corrupted);
}

TEST(ErrorInjectTest, ZeroRateIsNoOp) {
  YelpOptions opt;
  opt.corpus_size = 100;
  table::Table t = GenerateYelpCorpus(opt);
  ErrorInjectOptions err;
  err.error_rate = 0.0;
  err.target_field = "name";
  auto report = InjectErrors(&t, err);
  EXPECT_EQ(report.records_corrupted, 0u);
}

TEST(ErrorInjectTest, UnknownFieldIsNoOp) {
  YelpOptions opt;
  opt.corpus_size = 100;
  table::Table t = GenerateYelpCorpus(opt);
  ErrorInjectOptions err;
  err.error_rate = 0.5;
  err.target_field = "missing_field";
  auto report = InjectErrors(&t, err);
  EXPECT_EQ(report.records_corrupted, 0u);
}

TEST(ErrorInjectTest, DeterministicInSeed) {
  YelpOptions opt;
  opt.corpus_size = 500;
  table::Table a = GenerateYelpCorpus(opt);
  table::Table b = GenerateYelpCorpus(opt);
  ErrorInjectOptions err;
  err.error_rate = 0.3;
  err.target_field = "name";
  err.seed = 99;
  InjectErrors(&a, err);
  InjectErrors(&b, err);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(static_cast<table::RecordId>(i)).fields,
              b.record(static_cast<table::RecordId>(i)).fields);
  }
}

}  // namespace
}  // namespace smartcrawl::datagen

#include "datagen/scenario.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace smartcrawl::datagen {
namespace {

DblpScenarioConfig SmallDblpConfig() {
  DblpScenarioConfig cfg;
  cfg.corpus.corpus_size = 8000;
  cfg.corpus.seed = 11;
  cfg.corpus.db_community_fraction = 0.5;
  cfg.hidden_size = 3000;
  cfg.local_size = 500;
  cfg.delta_d = 0;
  cfg.top_k = 20;
  cfg.seed = 4;
  return cfg;
}

std::unordered_set<table::EntityId> Entities(const table::Table& t) {
  std::unordered_set<table::EntityId> s;
  for (const auto& rec : t.records()) s.insert(rec.entity_id);
  return s;
}

TEST(DblpScenarioTest, SizesMatchConfig) {
  auto s = BuildDblpScenario(SmallDblpConfig());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->local.size(), 500u);
  EXPECT_EQ(s->hidden->OracleSize(), 3000u);
  EXPECT_EQ(s->num_matchable, 500u);
}

TEST(DblpScenarioTest, LocalFullyContainedWhenNoDelta) {
  auto s = BuildDblpScenario(SmallDblpConfig());
  ASSERT_TRUE(s.ok());
  auto hidden_entities = Entities(s->hidden->OracleTable());
  for (const auto& rec : s->local.records()) {
    EXPECT_TRUE(hidden_entities.count(rec.entity_id))
        << "local record " << rec.id << " missing from H";
  }
}

TEST(DblpScenarioTest, DeltaRecordsExcludedFromHidden) {
  auto cfg = SmallDblpConfig();
  cfg.delta_d = 100;
  auto s = BuildDblpScenario(cfg);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->local.size(), 500u);
  EXPECT_EQ(s->num_matchable, 400u);
  auto hidden_entities = Entities(s->hidden->OracleTable());
  size_t missing = 0;
  for (const auto& rec : s->local.records()) {
    if (!hidden_entities.count(rec.entity_id)) ++missing;
  }
  EXPECT_EQ(missing, 100u);
  EXPECT_EQ(s->hidden->OracleSize(), 3000u);
}

TEST(DblpScenarioTest, NoDuplicateEntitiesWithinEitherSide) {
  auto cfg = SmallDblpConfig();
  cfg.delta_d = 50;
  auto s = BuildDblpScenario(cfg);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(Entities(s->local).size(), s->local.size());
  EXPECT_EQ(Entities(s->hidden->OracleTable()).size(),
            s->hidden->OracleSize());
}

TEST(DblpScenarioTest, ErrorInjectionDirtiesTitles) {
  auto cfg = SmallDblpConfig();
  cfg.error_rate = 0.5;
  auto clean = BuildDblpScenario(SmallDblpConfig());
  auto dirty = BuildDblpScenario(cfg);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  auto title = *clean->local.schema().FieldIndex("title");
  size_t diff = 0;
  for (size_t i = 0; i < clean->local.size(); ++i) {
    if (clean->local.record(static_cast<table::RecordId>(i)).fields[title] !=
        dirty->local.record(static_cast<table::RecordId>(i)).fields[title]) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 180u);  // ~50% of 500, minus no-op corruptions
}

TEST(DblpScenarioTest, InvalidConfigsRejected) {
  auto cfg = SmallDblpConfig();
  cfg.delta_d = cfg.local_size + 1;
  EXPECT_FALSE(BuildDblpScenario(cfg).ok());

  cfg = SmallDblpConfig();
  cfg.hidden_size = 100;
  cfg.local_size = 500;
  EXPECT_FALSE(BuildDblpScenario(cfg).ok());

  cfg = SmallDblpConfig();
  cfg.corpus.corpus_size = 1000;
  cfg.hidden_size = 3000;
  EXPECT_FALSE(BuildDblpScenario(cfg).ok());
}

TEST(DblpScenarioTest, HiddenSearchEngineWorksEndToEnd) {
  auto s = BuildDblpScenario(SmallDblpConfig());
  ASSERT_TRUE(s.ok());
  // Query a local record's exact title+venue+authors: its hidden twin must
  // be among the matches (conjunctive semantics; exact copies).
  const auto& rec = s->local.record(0);
  auto text_or = s->local.ConcatenatedText(0, {"title", "venue", "authors"});
  ASSERT_TRUE(text_or.ok());
  auto page = s->hidden->Search({*text_or});
  ASSERT_TRUE(page.ok());
  bool found = false;
  for (const auto& h : *page) found |= (h.entity_id == rec.entity_id);
  EXPECT_TRUE(found);
}

TEST(DblpScenarioTest, RecentBiasRestrictsLocalYears) {
  auto cfg = SmallDblpConfig();
  cfg.corpus.min_year = 1990;
  cfg.corpus.max_year = 2018;
  cfg.local_min_year = 2010;
  auto s = BuildDblpScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  auto year_idx = *s->local.schema().FieldIndex("year");
  for (const auto& rec : s->local.records()) {
    EXPECT_GE(std::stoi(rec.fields[year_idx]), 2010);
  }
  // The hidden database still spans all years.
  int old_hidden = 0;
  auto h_year = *s->hidden->OracleTable().schema().FieldIndex("year");
  for (const auto& rec : s->hidden->OracleTable().records()) {
    if (std::stoi(rec.fields[h_year]) < 2010) ++old_hidden;
  }
  EXPECT_GT(old_hidden, 0);
}

TEST(YelpScenarioTest, BuildsWithDrift) {
  YelpScenarioConfig cfg;
  cfg.corpus.corpus_size = 4000;
  cfg.local_size = 300;
  cfg.delta_d = 30;
  cfg.error_rate = 0.2;
  cfg.seed = 6;
  auto s = BuildYelpScenario(cfg);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->local.size(), 300u);
  EXPECT_EQ(s->num_matchable, 270u);
  EXPECT_EQ(s->hidden->OracleSize(), 4000u - 30u);
  EXPECT_EQ(s->hidden->top_k(), 50u);
}

TEST(YelpScenarioTest, DisjunctiveInterfaceRanksFullMatchesFirst) {
  YelpScenarioConfig cfg;
  cfg.corpus.corpus_size = 3000;
  cfg.local_size = 100;
  cfg.error_rate = 0.0;
  auto s = BuildYelpScenario(cfg);
  ASSERT_TRUE(s.ok());
  // Search the exact name+city of a local record; the true entity should
  // surface on the first page despite the disjunctive candidate explosion.
  bool found_any = false;
  for (table::RecordId d = 0; d < 20; ++d) {
    auto text_or = s->local.ConcatenatedText(d, {"name", "city"});
    ASSERT_TRUE(text_or.ok());
    auto page = s->hidden->Search({*text_or});
    ASSERT_TRUE(page.ok());
    for (const auto& h : *page) {
      if (h.entity_id == s->local.record(d).entity_id) {
        found_any = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_any);
}

}  // namespace
}  // namespace smartcrawl::datagen

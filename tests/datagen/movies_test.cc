#include "datagen/movies_gen.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/smart_crawler.h"
#include "datagen/scenario.h"
#include "hidden/budget.h"
#include "sample/sampler.h"

namespace smartcrawl::datagen {
namespace {

TEST(MoviesGenTest, GeneratesRequestedSizeWithSchema) {
  MoviesOptions opt;
  opt.corpus_size = 800;
  table::Table t = GenerateMoviesCorpus(opt);
  EXPECT_EQ(t.size(), 800u);
  EXPECT_EQ(t.schema().field_names,
            (std::vector<std::string>{"title", "director", "cast", "year",
                                      "genre", "rating"}));
}

TEST(MoviesGenTest, Deterministic) {
  MoviesOptions opt;
  opt.corpus_size = 300;
  table::Table a = GenerateMoviesCorpus(opt);
  table::Table b = GenerateMoviesCorpus(opt);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.record(static_cast<table::RecordId>(i)).fields,
              b.record(static_cast<table::RecordId>(i)).fields);
  }
}

TEST(MoviesGenTest, GenresAndYearsValid) {
  MoviesOptions opt;
  opt.corpus_size = 400;
  opt.min_year = 2000;
  opt.max_year = 2010;
  table::Table t = GenerateMoviesCorpus(opt);
  std::unordered_set<std::string> genres(MovieGenres().begin(),
                                         MovieGenres().end());
  auto year_idx = *t.schema().FieldIndex("year");
  auto genre_idx = *t.schema().FieldIndex("genre");
  for (const auto& rec : t.records()) {
    EXPECT_TRUE(genres.count(rec.fields[genre_idx])) << rec.fields[genre_idx];
    int y = std::stoi(rec.fields[year_idx]);
    EXPECT_GE(y, 2000);
    EXPECT_LE(y, 2010);
  }
}

TEST(MoviesGenTest, DirectorsRecurAcrossMovies) {
  MoviesOptions opt;
  opt.corpus_size = 2000;
  table::Table t = GenerateMoviesCorpus(opt);
  auto dir_idx = *t.schema().FieldIndex("director");
  std::unordered_set<std::string> directors;
  for (const auto& rec : t.records()) directors.insert(rec.fields[dir_idx]);
  // Skewed productivity: far fewer distinct directors than movies.
  EXPECT_LT(directors.size(), 1600u);
}

TEST(MoviesScenarioTest, BuildsValidScenario) {
  MoviesScenarioConfig cfg;
  cfg.corpus.corpus_size = 6000;
  cfg.hidden_size = 2500;
  cfg.local_size = 300;
  cfg.delta_d = 30;
  cfg.seed = 7;
  auto s = BuildMoviesScenario(cfg);
  ASSERT_TRUE(s.ok()) << s.status();
  EXPECT_EQ(s->local.size(), 300u);
  EXPECT_EQ(s->hidden->OracleSize(), 2500u);
  EXPECT_EQ(s->num_matchable, 270u);

  std::unordered_set<table::EntityId> hidden_entities;
  for (const auto& rec : s->hidden->OracleTable().records()) {
    hidden_entities.insert(rec.entity_id);
  }
  size_t missing = 0;
  for (const auto& rec : s->local.records()) {
    if (!hidden_entities.count(rec.entity_id)) ++missing;
  }
  EXPECT_EQ(missing, 30u);
}

TEST(MoviesScenarioTest, SmartCrawlWorksOnMovies) {
  MoviesScenarioConfig cfg;
  cfg.corpus.corpus_size = 6000;
  cfg.hidden_size = 2500;
  cfg.local_size = 300;
  cfg.top_k = 50;
  cfg.seed = 9;
  auto s = BuildMoviesScenario(cfg);
  ASSERT_TRUE(s.ok());
  auto sample = sample::BernoulliSample(*s->hidden, 0.02, 5);
  core::SmartCrawlOptions opt;
  opt.policy = core::SelectionPolicy::kEstBiased;
  opt.local_text_fields = s->local_text_fields;
  auto crawler = core::SmartCrawler::Create(&s->local, std::move(opt), &sample);
  ASSERT_TRUE(crawler.ok()) << crawler.status();
  hidden::BudgetedInterface iface(s->hidden.get(), 60);
  auto r = crawler.value()->Crawl(&iface, 60);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(core::FinalCoverage(s->local, *r), 60u);
}

}  // namespace
}  // namespace smartcrawl::datagen

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/itemset.h"
#include "util/random.h"

namespace smartcrawl::fpm {
namespace {

using Txns = std::vector<std::vector<text::TermId>>;

/// Brute-force miner for tiny inputs: enumerates all subsets of observed
/// items.
std::vector<FrequentItemset> BruteForce(const Txns& txns,
                                        const MiningOptions& opt) {
  std::vector<text::TermId> items;
  for (const auto& t : txns) {
    for (text::TermId x : t) items.push_back(x);
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  std::vector<FrequentItemset> out;
  size_t n = items.size();
  EXPECT_LE(n, 20u) << "brute force too large";
  for (uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    std::vector<text::TermId> subset;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1ULL << i)) subset.push_back(items[i]);
    }
    if (opt.max_itemset_size != 0 && subset.size() > opt.max_itemset_size) {
      continue;
    }
    uint32_t support = 0;
    for (const auto& t : txns) {
      std::vector<text::TermId> st = t;
      std::sort(st.begin(), st.end());
      st.erase(std::unique(st.begin(), st.end()), st.end());
      if (std::includes(st.begin(), st.end(), subset.begin(), subset.end())) {
        ++support;
      }
    }
    if (support >= opt.min_support) {
      out.push_back(FrequentItemset{subset, support});
    }
  }
  SortItemsets(&out);
  return out;
}

TEST(FpGrowthTest, RunningExampleItemsets) {
  // Paper Example 2's local database tokens (ids: 0=thai 1=noodle 2=house
  // 3=japanese 4=steak): d1 = thai noodle house, d2 = noodle house,
  // d3 = thai house, d4 = japanese noodle house.
  Txns txns = {{0, 1, 2}, {1, 2}, {0, 2}, {3, 1, 2}};
  MiningOptions opt;
  opt.min_support = 2;
  auto result = MineFrequentItemsets(txns, opt);
  SortItemsets(&result.itemsets);

  // Expected frequent itemsets with t=2: {thai}:2 {noodle}:3 {house}:4
  // {thai,house}:2 {noodle,house}:3.
  std::vector<FrequentItemset> expect = {
      {{0}, 2}, {{1}, 3}, {{2}, 4}, {{0, 2}, 2}, {{1, 2}, 3}};
  SortItemsets(&expect);
  EXPECT_EQ(result.itemsets, expect);
  EXPECT_FALSE(result.truncated);
}

TEST(FpGrowthTest, EmptyTransactions) {
  auto result = MineFrequentItemsets({}, MiningOptions{});
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(FpGrowthTest, MinSupportOneIncludesSingletons) {
  Txns txns = {{1}, {2}};
  MiningOptions opt;
  opt.min_support = 1;
  auto result = MineFrequentItemsets(txns, opt);
  SortItemsets(&result.itemsets);
  std::vector<FrequentItemset> expect = {{{1}, 1}, {{2}, 1}};
  SortItemsets(&expect);
  EXPECT_EQ(result.itemsets, expect);
}

TEST(FpGrowthTest, MaxItemsetSizeCaps) {
  Txns txns = {{1, 2, 3}, {1, 2, 3}};
  MiningOptions opt;
  opt.min_support = 2;
  opt.max_itemset_size = 2;
  auto result = MineFrequentItemsets(txns, opt);
  for (const auto& fis : result.itemsets) {
    EXPECT_LE(fis.items.size(), 2u);
  }
  // All 1- and 2-subsets of {1,2,3}: 3 + 3 = 6.
  EXPECT_EQ(result.itemsets.size(), 6u);
}

TEST(FpGrowthTest, MaxResultsTruncates) {
  Txns txns = {{1, 2, 3, 4}, {1, 2, 3, 4}};
  MiningOptions opt;
  opt.min_support = 2;
  opt.max_results = 3;
  auto result = MineFrequentItemsets(txns, opt);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.itemsets.size(), 3u);
}

TEST(FpGrowthTest, DuplicateItemsInTransactionCountOnce) {
  Txns txns = {{1, 1, 2}, {1, 2, 2}};
  MiningOptions opt;
  opt.min_support = 2;
  auto result = MineFrequentItemsets(txns, opt);
  SortItemsets(&result.itemsets);
  std::vector<FrequentItemset> expect = {{{1}, 2}, {{2}, 2}, {{1, 2}, 2}};
  SortItemsets(&expect);
  EXPECT_EQ(result.itemsets, expect);
}

TEST(AprioriTest, MatchesBruteForceOnRunningExample) {
  Txns txns = {{0, 1, 2}, {1, 2}, {0, 2}, {3, 1, 2}};
  MiningOptions opt;
  opt.min_support = 2;
  auto result = MineFrequentItemsetsApriori(txns, opt);
  SortItemsets(&result.itemsets);
  EXPECT_EQ(result.itemsets, BruteForce(txns, opt));
}

// Property: FP-growth == Apriori == brute force on random transactions.
struct FpmParams {
  size_t num_txns;
  size_t vocab;
  size_t max_len;
  uint32_t min_support;
  size_t max_size;
  uint64_t seed;
};

class MinerEquivalenceTest : public ::testing::TestWithParam<FpmParams> {};

TEST_P(MinerEquivalenceTest, AllThreeMinersAgree) {
  const auto& p = GetParam();
  smartcrawl::Rng rng(p.seed);
  Txns txns;
  for (size_t i = 0; i < p.num_txns; ++i) {
    size_t len = 1 + rng.UniformIndex(p.max_len);
    std::vector<text::TermId> t;
    for (size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<text::TermId>(rng.UniformIndex(p.vocab)));
    }
    txns.push_back(std::move(t));
  }
  MiningOptions opt;
  opt.min_support = p.min_support;
  opt.max_itemset_size = p.max_size;

  auto fp = MineFrequentItemsets(txns, opt);
  auto ap = MineFrequentItemsetsApriori(txns, opt);
  SortItemsets(&fp.itemsets);
  SortItemsets(&ap.itemsets);
  EXPECT_EQ(fp.itemsets, ap.itemsets);
  if (p.vocab <= 16) {
    EXPECT_EQ(fp.itemsets, BruteForce(txns, opt));
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomTransactions, MinerEquivalenceTest,
    ::testing::Values(FpmParams{10, 5, 4, 2, 0, 1},
                      FpmParams{50, 8, 6, 2, 0, 2},
                      FpmParams{100, 12, 5, 3, 3, 3},
                      FpmParams{200, 16, 8, 5, 4, 4},
                      FpmParams{100, 40, 6, 2, 3, 5},
                      FpmParams{30, 6, 6, 1, 0, 6},
                      FpmParams{500, 10, 4, 10, 0, 7}));

}  // namespace
}  // namespace smartcrawl::fpm

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fpm/itemset.h"
#include "util/random.h"
#include "util/zipf.h"

/// Determinism suite for the parallel FP-growth miner: the full
/// MiningResult — itemsets, their emission order, supports, and the
/// `truncated` flag — must be bit-identical across thread counts, equal to
/// the Apriori reference up to canonical ordering, and truncation under
/// max_results must keep exactly the first max_results itemsets of the
/// untruncated emission stream (the contract the sequential miner always
/// had, preserved by the canonical least-frequent-first merge).

namespace smartcrawl::fpm {
namespace {

using Txns = std::vector<std::vector<text::TermId>>;

/// Zipf-skewed random transactions: a few very common terms and a long
/// tail, the shape FP-growth's shared prefixes exploit (and the shape that
/// produces deep, uneven conditional trees — the interesting case for
/// parallel projection mining).
Txns MakeCorpus(size_t num_txns, size_t vocab, size_t max_len,
                uint64_t seed) {
  Rng rng(seed);
  ZipfDistribution zipf(vocab, 1.0);
  Txns txns;
  txns.reserve(num_txns);
  for (size_t i = 0; i < num_txns; ++i) {
    size_t len = 1 + rng.UniformIndex(max_len);
    std::vector<text::TermId> t;
    t.reserve(len);
    for (size_t j = 0; j < len; ++j) {
      t.push_back(static_cast<text::TermId>(zipf.Sample(rng)));
    }
    txns.push_back(std::move(t));
  }
  return txns;
}

void ExpectBitIdentical(const MiningResult& a, const MiningResult& b,
                        unsigned threads) {
  EXPECT_EQ(a.truncated, b.truncated) << "num_threads=" << threads;
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size())
      << "num_threads=" << threads;
  for (size_t i = 0; i < a.itemsets.size(); ++i) {
    ASSERT_EQ(a.itemsets[i], b.itemsets[i])
        << "itemset " << i << " diverges at num_threads=" << threads;
  }
}

struct DetParams {
  size_t num_txns;
  size_t vocab;
  size_t max_len;
  uint32_t min_support;
  size_t max_size;
  uint64_t seed;
};

class FpGrowthThreadSweepTest : public ::testing::TestWithParam<DetParams> {};

/// Itemset list AND emission order are scheduling-independent.
TEST_P(FpGrowthThreadSweepTest, BitIdenticalAcrossThreadCounts) {
  const auto& p = GetParam();
  Txns txns = MakeCorpus(p.num_txns, p.vocab, p.max_len, p.seed);
  MiningOptions opt;
  opt.min_support = p.min_support;
  opt.max_itemset_size = p.max_size;
  opt.num_threads = 1;
  MiningResult seq = MineFrequentItemsets(txns, opt);
  EXPECT_FALSE(seq.itemsets.empty());
  for (unsigned threads : {2u, 4u}) {
    opt.num_threads = threads;
    ExpectBitIdentical(seq, MineFrequentItemsets(txns, opt), threads);
  }
}

/// The parallel miner agrees with the Apriori reference at every thread
/// count (canonical order — Apriori emits in a different order by design).
TEST_P(FpGrowthThreadSweepTest, MatchesAprioriAtEveryThreadCount) {
  const auto& p = GetParam();
  Txns txns = MakeCorpus(p.num_txns, p.vocab, p.max_len, p.seed);
  MiningOptions opt;
  opt.min_support = p.min_support;
  opt.max_itemset_size = p.max_size;
  MiningResult ap = MineFrequentItemsetsApriori(txns, opt);
  SortItemsets(&ap.itemsets);
  for (unsigned threads : {1u, 2u, 4u}) {
    opt.num_threads = threads;
    MiningResult fp = MineFrequentItemsets(txns, opt);
    SortItemsets(&fp.itemsets);
    EXPECT_EQ(fp.itemsets, ap.itemsets) << "num_threads=" << threads;
  }
}

/// max_results keeps exactly the first max_results itemsets of the
/// untruncated emission stream, and sets `truncated` iff the stream is
/// longer — at every thread count, for caps across the whole range.
TEST_P(FpGrowthThreadSweepTest, TruncationIsAPrefixOfTheFullStream) {
  const auto& p = GetParam();
  Txns txns = MakeCorpus(p.num_txns, p.vocab, p.max_len, p.seed);
  MiningOptions opt;
  opt.min_support = p.min_support;
  opt.max_itemset_size = p.max_size;
  opt.num_threads = 1;
  MiningResult full = MineFrequentItemsets(txns, opt);
  ASSERT_FALSE(full.truncated);
  const size_t n = full.itemsets.size();
  ASSERT_GT(n, 2u);
  for (size_t cap : {size_t{1}, size_t{2}, n / 2, n - 1, n, n + 10}) {
    opt.max_results = cap;
    for (unsigned threads : {1u, 2u, 4u}) {
      opt.num_threads = threads;
      MiningResult capped = MineFrequentItemsets(txns, opt);
      ASSERT_EQ(capped.itemsets.size(), std::min(cap, n))
          << "cap=" << cap << " num_threads=" << threads;
      EXPECT_EQ(capped.truncated, cap < n)
          << "cap=" << cap << " num_threads=" << threads;
      for (size_t i = 0; i < capped.itemsets.size(); ++i) {
        ASSERT_EQ(capped.itemsets[i], full.itemsets[i])
            << "cap=" << cap << " num_threads=" << threads << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCorpora, FpGrowthThreadSweepTest,
    ::testing::Values(DetParams{200, 30, 8, 2, 4, 11},
                      DetParams{500, 60, 10, 3, 4, 12},
                      DetParams{800, 25, 6, 5, 0, 13},
                      DetParams{300, 100, 12, 2, 3, 14},
                      DetParams{1000, 40, 8, 8, 5, 15}));

/// A corpus whose global FP-tree is one chain exercises the sequential
/// single-path shortcut; it must stay thread-count-invariant too.
TEST(FpGrowthDeterminismTest, SinglePathGlobalTreeIsThreadInvariant) {
  Txns txns = {{1, 2, 3, 4}, {1, 2, 3}, {1, 2}, {1}};
  MiningOptions opt;
  opt.min_support = 1;
  opt.num_threads = 1;
  MiningResult seq = MineFrequentItemsets(txns, opt);
  EXPECT_EQ(seq.itemsets.size(), 15u);  // all subsets of {1,2,3,4}
  for (unsigned threads : {2u, 4u}) {
    opt.num_threads = threads;
    ExpectBitIdentical(seq, MineFrequentItemsets(txns, opt), threads);
  }
}

/// Truncation inside a single top-level item's projection (a cap smaller
/// than one item's own output) must still produce the sequential prefix.
TEST(FpGrowthDeterminismTest, CapSmallerThanOneProjection) {
  // Two distinct prefixes so the global tree is not single-path.
  Txns txns = {{1, 2, 3, 4, 5}, {1, 2, 3, 4, 5}, {6, 7}, {6, 7}};
  MiningOptions opt;
  opt.min_support = 2;
  opt.num_threads = 1;
  MiningResult full = MineFrequentItemsets(txns, opt);
  ASSERT_GT(full.itemsets.size(), 4u);
  opt.max_results = 3;  // cuts inside the least-frequent item's projection
  MiningResult seq = MineFrequentItemsets(txns, opt);
  EXPECT_TRUE(seq.truncated);
  ASSERT_EQ(seq.itemsets.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(seq.itemsets[i], full.itemsets[i]);
  }
  for (unsigned threads : {2u, 4u}) {
    opt.num_threads = threads;
    ExpectBitIdentical(seq, MineFrequentItemsets(txns, opt), threads);
  }
}

}  // namespace
}  // namespace smartcrawl::fpm

/// datagen_cli — emits the synthetic corpora and crawl scenarios as CSV so
/// the rest of the pipeline (and external tools) can consume them.
///
///   datagen_cli --kind=dblp --size=100000 --out=corpus.csv
///   datagen_cli --kind=yelp --scenario --local=3000 --error=0.25
///       --out-local=local.csv --out-hidden=hidden.csv

#include <cstdio>

#include "datagen/dblp_gen.h"
#include "datagen/scenario.h"
#include "datagen/yelp_gen.h"
#include "util/flags.h"

using namespace smartcrawl;  // NOLINT: tool brevity

int main(int argc, char** argv) {
  std::string kind = "dblp";
  int64_t size = 10000;
  int64_t seed = 1;
  bool scenario = false;
  int64_t local = 1000;
  int64_t hidden_size = 0;  // 0 = whole corpus (yelp) / 10x local (dblp)
  int64_t delta = 0;
  double error = 0.0;
  std::string out = "corpus.csv";
  std::string out_local = "local.csv";
  std::string out_hidden = "hidden.csv";

  FlagParser flags(
      "datagen_cli: generate synthetic DBLP/Yelp/movie corpora or crawl "
      "scenarios as CSV");
  flags.AddString("kind", &kind, "corpus kind: dblp | yelp | movies");
  flags.AddInt("size", &size, "corpus size (records)");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddBool("scenario", &scenario,
                "emit a local/hidden scenario pair instead of one corpus");
  flags.AddInt("local", &local, "scenario: |D|");
  flags.AddInt("hidden", &hidden_size,
               "scenario: |H| (0 = derive from corpus size)");
  flags.AddInt("delta", &delta, "scenario: |DeltaD| (records not in H)");
  flags.AddDouble("error", &error, "scenario: error%% injected into D");
  flags.AddString("out", &out, "output CSV for --kind corpus mode");
  flags.AddString("out-local", &out_local, "scenario: local CSV path");
  flags.AddString("out-hidden", &out_hidden, "scenario: hidden CSV path");

  auto st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpText().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }

  if (!scenario) {
    table::Table corpus;
    if (kind == "dblp") {
      datagen::DblpOptions opt;
      opt.corpus_size = static_cast<size_t>(size);
      opt.seed = static_cast<uint64_t>(seed);
      corpus = datagen::GenerateDblpCorpus(opt);
    } else if (kind == "yelp") {
      datagen::YelpOptions opt;
      opt.corpus_size = static_cast<size_t>(size);
      opt.seed = static_cast<uint64_t>(seed);
      corpus = datagen::GenerateYelpCorpus(opt);
    } else if (kind == "movies") {
      datagen::MoviesOptions opt;
      opt.corpus_size = static_cast<size_t>(size);
      opt.seed = static_cast<uint64_t>(seed);
      corpus = datagen::GenerateMoviesCorpus(opt);
    } else {
      std::fprintf(stderr, "unknown --kind: %s\n", kind.c_str());
      return 2;
    }
    auto write = corpus.ToCsvFile(out);
    if (!write.ok()) {
      std::fprintf(stderr, "%s\n", write.ToString().c_str());
      return 1;
    }
    std::printf("wrote %zu %s records to %s\n", corpus.size(), kind.c_str(),
                out.c_str());
    return 0;
  }

  // Scenario mode.
  Result<datagen::Scenario> s =
      Status::InvalidArgument("unknown --kind: " + kind);
  if (kind == "dblp") {
    datagen::DblpScenarioConfig cfg;
    cfg.corpus.corpus_size = static_cast<size_t>(size);
    cfg.corpus.seed = static_cast<uint64_t>(seed) * 31 + 5;
    cfg.hidden_size = hidden_size > 0 ? static_cast<size_t>(hidden_size)
                                      : static_cast<size_t>(local) * 10;
    cfg.local_size = static_cast<size_t>(local);
    cfg.delta_d = static_cast<size_t>(delta);
    cfg.error_rate = error;
    cfg.seed = static_cast<uint64_t>(seed);
    s = datagen::BuildDblpScenario(cfg);
  } else if (kind == "yelp") {
    datagen::YelpScenarioConfig cfg;
    cfg.corpus.corpus_size = static_cast<size_t>(size);
    cfg.corpus.seed = static_cast<uint64_t>(seed) * 17 + 3;
    cfg.local_size = static_cast<size_t>(local);
    cfg.delta_d = static_cast<size_t>(delta);
    cfg.error_rate = error;
    cfg.seed = static_cast<uint64_t>(seed);
    s = datagen::BuildYelpScenario(cfg);
  } else if (kind == "movies") {
    datagen::MoviesScenarioConfig cfg;
    cfg.corpus.corpus_size = static_cast<size_t>(size);
    cfg.corpus.seed = static_cast<uint64_t>(seed) * 23 + 9;
    cfg.hidden_size = hidden_size > 0 ? static_cast<size_t>(hidden_size)
                                      : static_cast<size_t>(local) * 10;
    cfg.local_size = static_cast<size_t>(local);
    cfg.delta_d = static_cast<size_t>(delta);
    cfg.error_rate = error;
    cfg.seed = static_cast<uint64_t>(seed);
    s = datagen::BuildMoviesScenario(cfg);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
    return 1;
  }
  auto w1 = s->local.ToCsvFile(out_local);
  auto w2 = s->hidden->OracleTable().ToCsvFile(out_hidden);
  if (!w1.ok() || !w2.ok()) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  std::printf("wrote |D|=%zu to %s and |H|=%zu to %s (matchable=%zu)\n",
              s->local.size(), out_local.c_str(), s->hidden->OracleSize(),
              out_hidden.c_str(), s->num_matchable);
  return 0;
}

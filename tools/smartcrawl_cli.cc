/// smartcrawl_cli — the end-to-end enrichment pipeline over CSV files.
///
/// The hidden database is simulated from a CSV (header = schema), exposed
/// through the configured keyword-search interface, and crawled under a
/// budget; matched hidden columns are imported into the local table.
///
///   smartcrawl_cli --local=local.csv --hidden=hidden.csv
///       --budget=500 --k=50 --policy=smart-b --theta=0.005
///       --import=3:year --output=enriched.csv --curve=curve.csv

#include <cstdint>
#include <cstdio>
#include <memory>

#include "core/baseline_crawlers.h"
#include "core/enrich.h"
#include "core/online.h"
#include "core/report.h"
#include "core/smart_crawler.h"
#include "hidden/budget.h"
#include "hidden/hidden_database.h"
#include "net/transport_stack.h"
#include "sample/sampler.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace smartcrawl;  // NOLINT: tool brevity

namespace {

struct CliConfig {
  std::string local_path;
  std::string hidden_path;
  std::string mode = "conjunctive";
  double match_fraction = 0.75;
  int64_t k = 100;
  std::string rank_field;
  int64_t budget = 1000;
  std::string policy = "smart-b";
  double theta = 0.005;
  bool online_sample = false;
  std::string sample_in;
  std::string sample_out;
  double jaccard = 0.6;
  int64_t threads = 1;
  int64_t seed = 1;
  std::string import_spec;
  std::string output;
  std::string curve;
  std::string snapshot_save;
  std::string snapshot_load;

  // Transport-stack knobs (see docs/architecture.md, "Transport stack").
  double fault_rate = 0.0;
  double rate_limit_rate = 0.0;
  int64_t latency_ms = 0;
  int64_t retry_max = 4;
  int64_t retry_budget = -1;  // -1 = unlimited
  int64_t cache_size = 0;
  int64_t net_seed = 0;
};

Result<core::SelectionPolicy> ParsePolicy(const std::string& s) {
  if (s == "smart-b") return core::SelectionPolicy::kEstBiased;
  if (s == "smart-u") return core::SelectionPolicy::kEstUnbiased;
  if (s == "simple") return core::SelectionPolicy::kSimple;
  if (s == "bound") return core::SelectionPolicy::kBound;
  return Status::InvalidArgument(
      "--policy must be smart-b|smart-u|simple|bound|naive (got " + s + ")");
}

Result<core::EnrichmentSpec> ParseImportSpec(const std::string& spec,
                                             double jaccard,
                                             unsigned num_threads) {
  core::EnrichmentSpec out;
  out.er.mode = match::ErMode::kJaccard;
  out.er.jaccard_threshold = jaccard;
  out.num_threads = num_threads;
  for (const std::string& part : Split(spec, ',')) {
    if (part.empty()) continue;
    auto pieces = Split(part, ':');
    if (pieces.size() != 2 || pieces[0].empty() || pieces[1].empty()) {
      return Status::InvalidArgument(
          "--import entries must be <hidden-field-index>:<new-column-name>");
    }
    char* end = nullptr;
    long idx = std::strtol(pieces[0].c_str(), &end, 10);
    if (end == pieces[0].c_str() || *end != '\0' || idx < 0) {
      return Status::InvalidArgument("bad field index in --import: " + part);
    }
    out.import_fields.emplace_back(static_cast<size_t>(idx), pieces[1]);
  }
  if (out.import_fields.empty()) {
    return Status::InvalidArgument("--import is required (i:name,...)");
  }
  return out;
}

int Run(const CliConfig& cfg) {
  // --- Load tables. --------------------------------------------------------
  auto local_or = table::Table::FromCsvFile(cfg.local_path);
  if (!local_or.ok()) {
    std::fprintf(stderr, "local: %s\n",
                 local_or.status().ToString().c_str());
    return 1;
  }
  table::Table local = std::move(local_or).value();
  size_t removed = local.Deduplicate();
  if (removed > 0) {
    std::fprintf(stderr, "note: removed %zu duplicate local records\n",
                 removed);
  }
  auto hidden_or = table::Table::FromCsvFile(cfg.hidden_path);
  if (!hidden_or.ok()) {
    std::fprintf(stderr, "hidden: %s\n",
                 hidden_or.status().ToString().c_str());
    return 1;
  }

  // --- Build the simulated hidden database. --------------------------------
  hidden::HiddenDatabaseOptions hopt;
  hopt.top_k = static_cast<size_t>(cfg.k);
  if (cfg.mode == "conjunctive") {
    hopt.mode = hidden::HiddenDatabaseOptions::Mode::kConjunctive;
  } else if (cfg.mode == "disjunctive") {
    hopt.mode = hidden::HiddenDatabaseOptions::Mode::kDisjunctive;
  } else if (cfg.mode == "semi") {
    hopt.mode = hidden::HiddenDatabaseOptions::Mode::kSemiConjunctive;
    hopt.min_match_fraction = cfg.match_fraction;
  } else {
    std::fprintf(stderr, "--mode must be conjunctive|disjunctive|semi\n");
    return 2;
  }
  table::Table hidden_table = std::move(hidden_or).value();
  std::unique_ptr<hidden::Ranker> ranker;
  if (!cfg.rank_field.empty()) {
    ranker = hidden::MakeFieldRanker(hidden_table, cfg.rank_field);
  }
  hidden::HiddenDatabase db(std::move(hidden_table), hopt,
                            std::move(ranker));
  std::printf("local |D|=%zu, hidden |H|=%zu, k=%zu, mode=%s, budget=%lld\n",
              local.size(), db.OracleSize(), db.top_k(), cfg.mode.c_str(),
              static_cast<long long>(cfg.budget));

  // --- Assemble the transport stack and crawl. ------------------------------
  // Canonical order: cache -> resilient -> budget -> faults -> hidden DB.
  net::TransportOptions topt;
  topt.inject_faults = cfg.fault_rate > 0.0 || cfg.rate_limit_rate > 0.0 ||
                       cfg.latency_ms > 0;
  topt.fault.transient_fault_rate = cfg.fault_rate;
  topt.fault.rate_limit_rate = cfg.rate_limit_rate;
  topt.fault.latency_ms =
      cfg.latency_ms > 0 ? static_cast<uint64_t>(cfg.latency_ms) : 0;
  topt.fault.seed = static_cast<uint64_t>(cfg.net_seed);
  topt.budget = static_cast<size_t>(cfg.budget);
  topt.resilient = true;
  topt.retry.max_attempts =
      cfg.retry_max < 1 ? 1 : static_cast<size_t>(cfg.retry_max);
  topt.retry.retry_budget = cfg.retry_budget < 0
                                ? SIZE_MAX
                                : static_cast<size_t>(cfg.retry_budget);
  topt.retry.seed = static_cast<uint64_t>(cfg.net_seed) + 1;
  topt.cache_capacity =
      cfg.cache_size > 0 ? static_cast<size_t>(cfg.cache_size) : 0;
  net::TransportStack stack(&db, topt);
  hidden::KeywordSearchInterface& iface = *stack.top();
  core::CrawlResult crawl;
  if (cfg.policy == "naive") {
    core::BaselineRunSpec spec;
    spec.policy = core::BaselinePolicy::kNaive;
    spec.budget = static_cast<size_t>(cfg.budget);
    spec.naive.seed = static_cast<uint64_t>(cfg.seed);
    spec.naive.keep_crawled_records = true;
    auto r = core::RunBaseline(spec, &iface, &local);
    if (!r.ok()) {
      std::fprintf(stderr, "crawl: %s\n", r.status().ToString().c_str());
      return 1;
    }
    crawl = std::move(r).value();
  } else {
    auto policy_or = ParsePolicy(cfg.policy);
    if (!policy_or.ok()) {
      std::fprintf(stderr, "%s\n", policy_or.status().ToString().c_str());
      return 2;
    }
    core::SmartCrawlOptions opt;
    opt.policy = *policy_or;
    opt.er.mode = match::ErMode::kJaccard;
    opt.er.jaccard_threshold = cfg.jaccard;
    opt.keep_crawled_records = true;
    opt.num_threads = cfg.threads < 0 ? 1u
                                      : static_cast<unsigned>(cfg.threads);
    const bool needs_sample =
        opt.policy == core::SelectionPolicy::kEstBiased ||
        opt.policy == core::SelectionPolicy::kEstUnbiased;
    if (needs_sample && cfg.online_sample) {
      core::BaselineRunSpec spec;
      spec.policy = core::BaselinePolicy::kOnlineSample;
      spec.budget = static_cast<size_t>(cfg.budget);
      spec.online.smart = std::move(opt);
      spec.online.seed = static_cast<uint64_t>(cfg.seed);
      auto r = core::RunBaseline(spec, &iface, &local);
      if (!r.ok()) {
        std::fprintf(stderr, "crawl: %s\n", r.status().ToString().c_str());
        return 1;
      }
      crawl = std::move(r).value();
    } else if (!cfg.snapshot_load.empty()) {
      // Snapshot path: the plan (including any sample-match state) is
      // mmap-loaded from disk; no sample and no build work is needed.
      auto plan_or =
          core::CrawlPlan::LoadSnapshot(cfg.snapshot_load, &local, opt);
      if (!plan_or.ok()) {
        std::fprintf(stderr, "snapshot: %s\n",
                     plan_or.status().ToString().c_str());
        return 1;
      }
      std::printf("plan loaded from snapshot %s\n", cfg.snapshot_load.c_str());
      auto crawler_or = core::SmartCrawler::Adopt(
          std::shared_ptr<const core::CrawlPlan>(std::move(plan_or).value()));
      if (!crawler_or.ok()) {
        std::fprintf(stderr, "crawler: %s\n",
                     crawler_or.status().ToString().c_str());
        return 1;
      }
      auto r = crawler_or.value()->Crawl(&iface,
                                         static_cast<size_t>(cfg.budget));
      if (!r.ok()) {
        std::fprintf(stderr, "crawl: %s\n", r.status().ToString().c_str());
        return 1;
      }
      crawl = std::move(r).value();
    } else {
      sample::HiddenSample sample;
      if (needs_sample) {
        if (!cfg.sample_in.empty()) {
          // Reuse a previously persisted sample (the paper's sharing
          // story: one offline sample serves every user of the site).
          auto loaded = sample::LoadHiddenSample(cfg.sample_in);
          if (!loaded.ok()) {
            std::fprintf(stderr, "sample: %s\n",
                         loaded.status().ToString().c_str());
            return 1;
          }
          sample = std::move(loaded).value();
        } else {
          // Offline oracle sample of the simulated hidden DB (the CSV
          // plays the role of the provider's database; a pre-built sample
          // is the paper's default assumption).
          sample = sample::BernoulliSample(db, cfg.theta,
                                           static_cast<uint64_t>(cfg.seed));
        }
        std::printf("sample: %zu records (theta=%.4f)\n",
                    sample.records.size(), sample.theta);
        if (!cfg.sample_out.empty()) {
          auto saved = sample::SaveHiddenSample(sample, cfg.sample_out);
          if (!saved.ok()) {
            std::fprintf(stderr, "sample: %s\n", saved.ToString().c_str());
            return 1;
          }
          std::printf("sample persisted -> %s (+.meta)\n",
                      cfg.sample_out.c_str());
        }
      }
      auto crawler_or = core::SmartCrawler::Create(
          &local, std::move(opt), needs_sample ? &sample : nullptr);
      if (!crawler_or.ok()) {
        std::fprintf(stderr, "crawler: %s\n",
                     crawler_or.status().ToString().c_str());
        return 1;
      }
      if (!cfg.snapshot_save.empty()) {
        auto saved = crawler_or.value()->plan().Serialize(cfg.snapshot_save);
        if (!saved.ok()) {
          std::fprintf(stderr, "snapshot: %s\n", saved.ToString().c_str());
          return 1;
        }
        std::printf("plan snapshot -> %s\n", cfg.snapshot_save.c_str());
      }
      auto r = crawler_or.value()->Crawl(&iface,
                                         static_cast<size_t>(cfg.budget));
      if (!r.ok()) {
        std::fprintf(stderr, "crawl: %s\n", r.status().ToString().c_str());
        return 1;
      }
      crawl = std::move(r).value();
    }
  }
  std::printf("issued %zu queries; crawled %zu distinct hidden records; "
              "%zu local records matched by the crawler\n",
              crawl.queries_issued, crawl.crawled_records.size(),
              crawl.covered_local_ids.size());
  if (crawl.stats.queries_unavailable > 0) {
    std::printf("skipped %zu queries on transport failures (endpoint "
                "unavailable after retries)\n",
                crawl.stats.queries_unavailable);
  }
  std::printf("%s", core::FormatTransportStats(stack.Stats()).c_str());

  // --- Enrich and write outputs. --------------------------------------------
  if (!cfg.output.empty()) {
    auto spec_or = ParseImportSpec(
        cfg.import_spec, cfg.jaccard,
        cfg.threads < 0 ? 1u : static_cast<unsigned>(cfg.threads));
    if (!spec_or.ok()) {
      std::fprintf(stderr, "%s\n", spec_or.status().ToString().c_str());
      return 2;
    }
    auto enriched =
        core::EnrichTable(local, crawl.crawled_records, *spec_or);
    if (!enriched.ok()) {
      std::fprintf(stderr, "enrich: %s\n",
                   enriched.status().ToString().c_str());
      return 1;
    }
    auto write = enriched->enriched.ToCsvFile(cfg.output);
    if (!write.ok()) {
      std::fprintf(stderr, "%s\n", write.ToString().c_str());
      return 1;
    }
    std::printf("enriched %zu/%zu records -> %s\n",
                enriched->records_enriched, local.size(),
                cfg.output.c_str());
  }
  if (!cfg.curve.empty()) {
    // The crawler-side matched-record curve (no ground truth in CSV mode).
    core::SeriesTable table;
    table.x_name = "query";
    std::vector<double> crawled_count;
    size_t total = 0;
    std::unordered_map<uint64_t, bool> seen;
    for (size_t i = 0; i < crawl.iterations.size(); ++i) {
      for (auto e : crawl.iterations[i].page_entities) {
        (void)e;
      }
      total += crawl.iterations[i].page_size;
      table.x.push_back(i + 1);
      crawled_count.push_back(static_cast<double>(total));
    }
    table.series.emplace_back("records_fetched", std::move(crawled_count));
    auto write = core::WriteSeriesCsv(cfg.curve, table);
    if (!write.ok()) {
      std::fprintf(stderr, "%s\n", write.ToString().c_str());
      return 1;
    }
    std::printf("wrote per-query fetch curve -> %s\n", cfg.curve.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliConfig cfg;
  FlagParser flags(
      "smartcrawl_cli: crawl a (simulated) hidden database to enrich a "
      "local CSV");
  flags.AddString("local", &cfg.local_path, "local database CSV (required)");
  flags.AddString("hidden", &cfg.hidden_path,
                  "hidden database CSV (required)");
  flags.AddString("mode", &cfg.mode,
                  "interface mode: conjunctive | disjunctive | semi");
  flags.AddDouble("match-fraction", &cfg.match_fraction,
                  "semi mode: minimum fraction of keywords a record must "
                  "contain");
  flags.AddInt("k", &cfg.k, "result-page limit of the interface");
  flags.AddString("rank-field", &cfg.rank_field,
                  "numeric hidden field used for ranking (default: seeded "
                  "hash order)");
  flags.AddInt("budget", &cfg.budget, "query budget b");
  flags.AddString("policy", &cfg.policy,
                  "smart-b | smart-u | simple | bound | naive");
  flags.AddDouble("theta", &cfg.theta,
                  "sampling ratio for the offline sample");
  flags.AddBool("online-sample", &cfg.online_sample,
                "build the sample at crawl time out of the same budget");
  flags.AddString("sample-in", &cfg.sample_in,
                  "reuse a persisted sample (CSV written by --sample-out)");
  flags.AddString("sample-out", &cfg.sample_out,
                  "persist the sample for reuse (writes CSV + .meta)");
  flags.AddInt("threads", &cfg.threads,
               "worker threads for crawl-side precomputation — the single "
               "crawler thread knob, forwarded to SmartCrawlOptions::"
               "num_threads (0 = all hardware threads; result is identical "
               "either way)");
  flags.AddDouble("jaccard", &cfg.jaccard,
                  "Jaccard threshold for entity resolution");
  flags.AddInt("seed", &cfg.seed, "seed for sampling/shuffling");
  flags.AddString("import", &cfg.import_spec,
                  "columns to import: <hidden-field-index>:<new-name>,...");
  flags.AddString("output", &cfg.output, "enriched CSV output path");
  flags.AddString("curve", &cfg.curve, "per-query fetch-curve CSV path");
  flags.AddString("snapshot-save", &cfg.snapshot_save,
                  "after building the crawl plan, persist it as a snapshot "
                  "at this path (see docs/architecture.md, \"Snapshots\")");
  flags.AddString("snapshot-load", &cfg.snapshot_load,
                  "mmap-load a previously saved crawl plan instead of "
                  "building one; rejected unless it matches the local "
                  "table and options of this invocation");
  flags.AddDouble("fault-rate", &cfg.fault_rate,
                  "inject transient transport failures with this "
                  "probability per attempt");
  flags.AddDouble("rate-limit-rate", &cfg.rate_limit_rate,
                  "inject rate-limit rejections (with retry-after hint) "
                  "with this probability per attempt");
  flags.AddInt("latency-ms", &cfg.latency_ms,
               "simulated per-attempt endpoint latency (no real sleeping)");
  flags.AddInt("retry-max", &cfg.retry_max,
               "attempts per query incl. the first (1 = no retries)");
  flags.AddInt("retry-budget", &cfg.retry_budget,
               "lifetime cap on retries across the crawl (-1 = unlimited)");
  flags.AddInt("cache-size", &cfg.cache_size,
               "LRU query-result cache capacity in pages (0 = no cache)");
  flags.AddInt("net-seed", &cfg.net_seed,
               "seed for the fault model and retry jitter");

  auto st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 flags.HelpText().c_str());
    return 2;
  }
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (cfg.local_path.empty() || cfg.hidden_path.empty()) {
    std::fprintf(stderr, "--local and --hidden are required\n%s",
                 flags.HelpText().c_str());
    return 2;
  }
  return Run(cfg);
}

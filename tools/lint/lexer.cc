#include "lint/lexer.h"

#include <cctype>
#include <cstddef>

namespace sclint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Tracks line/col while scanning forward through the content.
class Cursor {
 public:
  explicit Cursor(std::string_view content) : content_(content) {}

  bool AtEnd() const { return pos_ >= content_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < content_.size() ? content_[pos_ + ahead] : '\0';
  }
  size_t pos() const { return pos_; }
  int line() const { return line_; }
  int col() const { return col_; }

  void Advance() {
    if (AtEnd()) return;
    if (content_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  void AdvanceBy(size_t n) {
    for (size_t i = 0; i < n; ++i) Advance();
  }

  std::string_view Slice(size_t from) const {
    return content_.substr(from, pos_ - from);
  }

 private:
  std::string_view content_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

/// Consumes a quoted literal body after the opening quote has been
/// consumed; handles backslash escapes and stops after the closing quote.
void ConsumeQuoted(Cursor& cur, char quote) {
  while (!cur.AtEnd()) {
    char c = cur.Peek();
    if (c == '\\') {
      cur.AdvanceBy(2);
      continue;
    }
    cur.Advance();
    if (c == quote || c == '\n') break;  // newline: unterminated literal
  }
}

/// Consumes a raw string after `R"` has been consumed: reads the delimiter
/// up to '(' and scans for `)delimiter"`.
void ConsumeRawString(Cursor& cur, std::string_view content) {
  std::string delim;
  while (!cur.AtEnd() && cur.Peek() != '(') {
    delim.push_back(cur.Peek());
    cur.Advance();
  }
  cur.Advance();  // '('
  std::string closer = ")" + delim + "\"";
  while (!cur.AtEnd()) {
    if (cur.Peek() == ')' &&
        content.substr(cur.pos(), closer.size()) == closer) {
      cur.AdvanceBy(closer.size());
      return;
    }
    cur.Advance();
  }
}

/// True when the identifier just lexed is a string-literal prefix (u8, L,
/// ...) directly followed by a quote, e.g. `u8"x"` or `LR"(x)"`.
bool IsLiteralPrefix(std::string_view ident, char next) {
  if (next != '"' && next != '\'') return false;
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L" ||
         ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

}  // namespace

std::vector<Token> Lex(std::string_view content) {
  std::vector<Token> tokens;
  Cursor cur(content);

  auto emit = [&](TokenKind kind, size_t from, int line, int col) {
    tokens.push_back(Token{kind, content.substr(from, cur.pos() - from),
                           line, col});
  };

  bool at_line_start = true;  // only whitespace seen since the last newline
  while (!cur.AtEnd()) {
    char c = cur.Peek();
    size_t start = cur.pos();
    int line = cur.line();
    int col = cur.col();

    if (c == '\n') {
      at_line_start = true;
      cur.Advance();
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      cur.Advance();
      continue;
    }

    // Preprocessor directive: '#' first on the line; consume the logical
    // line including backslash continuations.
    if (c == '#' && at_line_start) {
      while (!cur.AtEnd()) {
        if (cur.Peek() == '\\' && cur.Peek(1) == '\n') {
          cur.AdvanceBy(2);
          continue;
        }
        if (cur.Peek() == '\n') break;
        // A // comment ends the directive; leave it for the main loop.
        if (cur.Peek() == '/' && (cur.Peek(1) == '/' || cur.Peek(1) == '*'))
          break;
        cur.Advance();
      }
      emit(TokenKind::kDirective, start, line, col);
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    if (c == '/' && cur.Peek(1) == '/') {
      while (!cur.AtEnd() && cur.Peek() != '\n') cur.Advance();
      emit(TokenKind::kComment, start, line, col);
      continue;
    }
    if (c == '/' && cur.Peek(1) == '*') {
      cur.AdvanceBy(2);
      while (!cur.AtEnd() &&
             !(cur.Peek() == '*' && cur.Peek(1) == '/'))
        cur.Advance();
      cur.AdvanceBy(2);
      emit(TokenKind::kComment, start, line, col);
      continue;
    }

    // Attribute specifier: `[[ ... ]]` as one opaque token. `[[` cannot
    // start anything else in C++ (a subscript of a subscript has tokens
    // between the brackets), so the two-char lookahead is unambiguous.
    if (c == '[' && cur.Peek(1) == '[') {
      int depth = 0;
      while (!cur.AtEnd()) {
        char b = cur.Peek();
        if (b == '[') ++depth;
        if (b == ']') --depth;
        cur.Advance();
        if (depth == 0) break;
      }
      emit(TokenKind::kAttribute, start, line, col);
      continue;
    }

    if (c == '"') {
      cur.Advance();
      ConsumeQuoted(cur, '"');
      emit(TokenKind::kString, start, line, col);
      continue;
    }
    if (c == '\'') {
      cur.Advance();
      ConsumeQuoted(cur, '\'');
      emit(TokenKind::kCharLiteral, start, line, col);
      continue;
    }

    if (IsIdentStart(c)) {
      while (!cur.AtEnd() && IsIdentChar(cur.Peek())) cur.Advance();
      std::string_view ident = cur.Slice(start);
      if (IsLiteralPrefix(ident, cur.Peek())) {
        bool raw = ident.back() == 'R';
        char quote = cur.Peek();
        cur.Advance();
        if (raw)
          ConsumeRawString(cur, content);
        else
          ConsumeQuoted(cur, quote);
        emit(quote == '"' ? TokenKind::kString : TokenKind::kCharLiteral,
             start, line, col);
      } else {
        emit(TokenKind::kIdentifier, start, line, col);
      }
      continue;
    }

    if (IsDigit(c) || (c == '.' && IsDigit(cur.Peek(1)))) {
      // Numbers, including hex, digit separators (1'000) and exponents.
      cur.Advance();
      while (!cur.AtEnd()) {
        char n = cur.Peek();
        if (IsIdentChar(n) || n == '.') {
          cur.Advance();
        } else if (n == '\'' && IsIdentChar(cur.Peek(1))) {
          cur.AdvanceBy(2);  // digit separator
        } else if ((n == '+' || n == '-') && cur.pos() > start) {
          char prev = content[cur.pos() - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P')
            cur.Advance();
          else
            break;
        } else {
          break;
        }
      }
      emit(TokenKind::kNumber, start, line, col);
      continue;
    }

    // Punctuation. Fuse the two-char tokens rules care about.
    if (c == ':' && cur.Peek(1) == ':') {
      cur.AdvanceBy(2);
    } else if (c == '-' && cur.Peek(1) == '>') {
      cur.AdvanceBy(2);
    } else {
      cur.Advance();
    }
    emit(TokenKind::kPunct, start, line, col);
  }
  return tokens;
}

}  // namespace sclint

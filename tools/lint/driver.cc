#include "lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace sclint {
namespace {

namespace fs = std::filesystem;

std::string NormalizeSlashes(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// Path relative to root when `path` lies under it; `path` otherwise.
std::string RelativeTo(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty() || rel.native()[0] == '.')
    return NormalizeSlashes(path.generic_string());
  return NormalizeSlashes(rel.generic_string());
}

bool HasExtension(const fs::path& p,
                  const std::vector<std::string>& extensions) {
  std::string ext = p.extension().string();
  for (const std::string& e : extensions)
    if (ext == e) return true;
  return false;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// True when `path` matches an allowlist entry: exact file, or directory
/// prefix ("src/net" covers "src/net/clock.h").
bool PathMatches(const std::string& path, const std::string& pattern) {
  if (path == pattern) return true;
  return path.size() > pattern.size() && !pattern.empty() &&
         path.compare(0, pattern.size(), pattern) == 0 &&
         path[pattern.size()] == '/';
}

bool PathInList(const std::string& path,
                const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns)
    if (PathMatches(path, p)) return true;
  return false;
}

/// Per-line suppression sets harvested from NOLINT comments. A line mapped
/// to an empty set suppresses every rule on that line.
std::map<int, std::set<std::string>> CollectNolint(const FileUnit& unit) {
  std::map<int, std::set<std::string>> suppress;
  auto add = [&suppress](int line, const std::set<std::string>& rules) {
    auto [it, inserted] = suppress.emplace(line, rules);
    if (!inserted) {
      if (rules.empty() || it->second.empty())
        it->second.clear();  // bare NOLINT wins: suppress everything
      else
        it->second.insert(rules.begin(), rules.end());
    }
  };
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    for (size_t pos = 0; (pos = text.find("NOLINT", pos)) !=
                         std::string_view::npos;) {
      bool nextline =
          text.compare(pos, 14, "NOLINTNEXTLINE") == 0;
      size_t after = pos + (nextline ? 14 : 6);
      std::set<std::string> rules;  // empty = all
      if (after < text.size() && text[after] == '(') {
        size_t close = text.find(')', after);
        if (close != std::string_view::npos) {
          std::string list(text.substr(after + 1, close - after - 1));
          std::istringstream items(list);
          std::string item;
          while (std::getline(items, item, ',')) {
            size_t b = item.find_first_not_of(" \t");
            size_t e = item.find_last_not_of(" \t");
            if (b != std::string::npos)
              rules.insert(item.substr(b, e - b + 1));
          }
          after = close + 1;
        }
      }
      int line = t.line;
      for (size_t k = 0; k < pos; ++k)
        if (text[k] == '\n') ++line;
      add(nextline ? line + 1 : line, rules);
      pos = after;
    }
  }
  return suppress;
}

bool IsSuppressed(const std::map<int, std::set<std::string>>& suppress,
                  const Finding& f) {
  auto it = suppress.find(f.line);
  if (it == suppress.end()) return false;
  return it->second.empty() || it->second.count(f.rule) > 0;
}

}  // namespace

bool RunLint(const LintOptions& options, LintReport* report,
             std::string* error) {
  fs::path root(options.root.empty() ? "." : options.root);
  if (!fs::exists(root)) {
    *error = "root does not exist: " + root.string();
    return false;
  }

  Config config;
  std::string config_path = options.config_path;
  if (config_path.empty()) {
    fs::path candidate = root / ".sclint.toml";
    if (fs::exists(candidate)) config_path = candidate.string();
  }
  if (!config_path.empty() && !config.LoadFile(config_path, error))
    return false;

  std::vector<std::string> roots = config.GetList("lint", "roots");
  if (roots.empty()) roots = {"src", "tools", "bench"};
  std::vector<std::string> extensions = config.GetList("lint", "extensions");
  if (extensions.empty()) extensions = {".h", ".hpp", ".hh", ".cc", ".cpp"};
  const std::vector<std::string>& excludes = config.GetList("lint", "exclude");

  // 1. Collect files (explicit list, or a deterministic walk of the roots).
  std::vector<fs::path> paths;
  if (!options.files.empty()) {
    for (const std::string& f : options.files) {
      fs::path p(f);
      if (!fs::exists(p) && fs::exists(root / p)) p = root / p;
      if (!fs::exists(p)) {
        *error = "no such file: " + f;
        return false;
      }
      paths.push_back(p);
    }
  } else {
    for (const std::string& r : roots) {
      fs::path dir = root / r;
      if (!fs::exists(dir)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(dir)) {
        if (!entry.is_regular_file()) continue;
        if (!HasExtension(entry.path(), extensions)) continue;
        std::string rel = RelativeTo(root, entry.path());
        if (PathInList(rel, excludes)) continue;
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  // 2. Lex everything up front; rules and the registry need all units.
  std::vector<FileUnit> units;
  units.reserve(paths.size());
  for (const fs::path& p : paths) {
    std::string content;
    if (!ReadFile(p, &content)) {
      *error = "cannot read: " + p.string();
      return false;
    }
    units.push_back(MakeFileUnit(RelativeTo(root, p), std::move(content)));
  }
  report->files_scanned = units.size();

  // 3. Cross-file registry of Status/Result-returning functions.
  RuleContext ctx;
  ctx.config = &config;
  for (const FileUnit& unit : units)
    HarvestStatusFunctions(unit, &ctx.status_functions);
  for (const std::string& extra :
       config.GetList("rule.sc-discarded-status", "functions"))
    ctx.status_functions.insert(extra);

  // 4. Run every enabled rule over every unit.
  for (const FileUnit& unit : units) {
    std::map<int, std::set<std::string>> suppress = CollectNolint(unit);
    for (const RuleDef& rule : AllRules()) {
      std::string section = "rule." + rule.name;
      std::string severity =
          config.GetString(section, "severity",
                           rule.default_severity == Severity::kError
                               ? "error"
                               : "warning");
      if (severity == "off") continue;
      if (PathInList(unit.path, config.GetList(section, "allow"))) continue;

      std::vector<Finding> raw;
      rule.check(unit, ctx, &raw);
      for (Finding& f : raw) {
        if (IsSuppressed(suppress, f)) continue;
        f.severity =
            severity == "warning" ? Severity::kWarning : Severity::kError;
        report->findings.push_back(std::move(f));
      }
    }
  }

  std::sort(report->findings.begin(), report->findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.col, a.rule) <
                     std::tie(b.path, b.line, b.col, b.rule);
            });
  for (const Finding& f : report->findings) {
    if (f.severity == Severity::kError)
      ++report->errors;
    else
      ++report->warnings;
  }
  return true;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ':' << finding.line << ':' << finding.col << ": "
      << (finding.severity == Severity::kError ? "error" : "warning")
      << ": [" << finding.rule << "] " << finding.message;
  return out.str();
}

}  // namespace sclint

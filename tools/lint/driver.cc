#include "lint/driver.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

#include "lint/model.h"
#include "util/thread_pool.h"

namespace sclint {
namespace {

namespace fs = std::filesystem;

std::string NormalizeSlashes(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

/// Path relative to root when `path` lies under it; `path` otherwise.
std::string RelativeTo(const fs::path& root, const fs::path& path) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty() || rel.native()[0] == '.')
    return NormalizeSlashes(path.generic_string());
  return NormalizeSlashes(rel.generic_string());
}

bool HasExtension(const fs::path& p,
                  const std::vector<std::string>& extensions) {
  std::string ext = p.extension().string();
  for (const std::string& e : extensions)
    if (ext == e) return true;
  return false;
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// True when `path` matches an allowlist entry: exact file, or directory
/// prefix ("src/net" covers "src/net/clock.h").
bool PathMatches(const std::string& path, const std::string& pattern) {
  if (path == pattern) return true;
  return path.size() > pattern.size() && !pattern.empty() &&
         path.compare(0, pattern.size(), pattern) == 0 &&
         path[pattern.size()] == '/';
}

bool PathInList(const std::string& path,
                const std::vector<std::string>& patterns) {
  for (const std::string& p : patterns)
    if (PathMatches(path, p)) return true;
  return false;
}

/// Per-line suppression sets harvested from NOLINT comments. A line mapped
/// to an empty set suppresses every rule on that line.
std::map<int, std::set<std::string>> CollectNolint(const FileUnit& unit) {
  std::map<int, std::set<std::string>> suppress;
  auto add = [&suppress](int line, const std::set<std::string>& rules) {
    auto [it, inserted] = suppress.emplace(line, rules);
    if (!inserted) {
      if (rules.empty() || it->second.empty())
        it->second.clear();  // bare NOLINT wins: suppress everything
      else
        it->second.insert(rules.begin(), rules.end());
    }
  };
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    for (size_t pos = 0; (pos = text.find("NOLINT", pos)) !=
                         std::string_view::npos;) {
      bool nextline =
          text.compare(pos, 14, "NOLINTNEXTLINE") == 0;
      size_t after = pos + (nextline ? 14 : 6);
      std::set<std::string> rules;  // empty = all
      if (after < text.size() && text[after] == '(') {
        size_t close = text.find(')', after);
        if (close != std::string_view::npos) {
          std::string list(text.substr(after + 1, close - after - 1));
          std::istringstream items(list);
          std::string item;
          while (std::getline(items, item, ',')) {
            size_t b = item.find_first_not_of(" \t");
            size_t e = item.find_last_not_of(" \t");
            if (b != std::string::npos)
              rules.insert(item.substr(b, e - b + 1));
          }
          after = close + 1;
        }
      }
      int line = t.line;
      for (size_t k = 0; k < pos; ++k)
        if (text[k] == '\n') ++line;
      add(nextline ? line + 1 : line, rules);
      pos = after;
    }
  }
  return suppress;
}

bool IsSuppressed(const std::map<int, std::set<std::string>>& suppress,
                  const Finding& f) {
  auto it = suppress.find(f.line);
  if (it == suppress.end()) return false;
  return it->second.empty() || it->second.count(f.rule) > 0;
}

/// Runs every enabled rule over one unit, applying allowlists, severity
/// overrides and NOLINT suppressions. Pure function of immutable inputs
/// (unit, config, model), so pass 2 calls it from worker threads freely.
std::vector<Finding> LintUnit(const FileUnit& unit, const Config& config,
                              const RuleContext& ctx) {
  std::vector<Finding> findings;
  std::map<int, std::set<std::string>> suppress = CollectNolint(unit);
  for (const RuleDef& rule : AllRules()) {
    std::string section = "rule." + rule.name;
    std::string severity =
        config.GetString(section, "severity",
                         rule.default_severity == Severity::kError
                             ? "error"
                             : "warning");
    if (severity == "off") continue;
    if (PathInList(unit.path, config.GetList(section, "allow"))) continue;

    std::vector<Finding> raw;
    rule.check(unit, ctx, &raw);
    for (Finding& f : raw) {
      if (IsSuppressed(suppress, f)) continue;
      f.severity =
          severity == "warning" ? Severity::kWarning : Severity::kError;
      findings.push_back(std::move(f));
    }
  }
  return findings;
}

}  // namespace

bool RunLint(const LintOptions& options, LintReport* report,
             std::string* error) {
  fs::path root(options.root.empty() ? "." : options.root);
  if (!fs::exists(root)) {
    *error = "root does not exist: " + root.string();
    return false;
  }

  Config config;
  std::string config_path = options.config_path;
  if (config_path.empty()) {
    fs::path candidate = root / ".sclint.toml";
    if (fs::exists(candidate)) config_path = candidate.string();
  }
  if (!config_path.empty() && !config.LoadFile(config_path, error))
    return false;

  std::vector<std::string> roots = config.GetList("lint", "roots");
  if (roots.empty()) roots = {"src", "tools", "bench"};
  std::vector<std::string> extensions = config.GetList("lint", "extensions");
  if (extensions.empty()) extensions = {".h", ".hpp", ".hh", ".cc", ".cpp"};
  const std::vector<std::string>& excludes = config.GetList("lint", "exclude");

  // Pass 1a: collect the model file set — ALWAYS the full walk of the
  // configured roots, so cross-TU rules see the same world whether one
  // file or everything is being linted — plus any explicitly requested
  // files that lie outside the roots.
  std::map<std::string, fs::path> model_files;  // rel path -> disk path
  for (const std::string& r : roots) {
    fs::path dir = root / r;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      if (!HasExtension(entry.path(), extensions)) continue;
      std::string rel = RelativeTo(root, entry.path());
      if (PathInList(rel, excludes)) continue;
      model_files.emplace(std::move(rel), entry.path());
    }
  }
  std::set<std::string> targets;  // rel paths to actually lint
  if (!options.files.empty()) {
    for (const std::string& f : options.files) {
      fs::path p(f);
      if (!fs::exists(p) && fs::exists(root / p)) p = root / p;
      if (!fs::exists(p)) {
        *error = "no such file: " + f;
        return false;
      }
      std::string rel = RelativeTo(root, p);
      model_files.emplace(rel, p);
      targets.insert(std::move(rel));
    }
  } else {
    for (const auto& [rel, _] : model_files) targets.insert(rel);
  }

  // Pass 1b: read and lex every model file across the pool. Slots are
  // preassigned in sorted path order, so the unit vector (and everything
  // derived from it) is identical at any job count.
  std::vector<fs::path> disk_paths;
  std::vector<std::string> rel_paths;
  for (const auto& [rel, p] : model_files) {
    rel_paths.push_back(rel);
    disk_paths.push_back(p);
  }
  std::vector<FileUnit> units(rel_paths.size());
  std::vector<std::string> read_errors(rel_paths.size());
  smartcrawl::util::ThreadPool pool(options.jobs);
  pool.ParallelFor(0, rel_paths.size(), 1, [&](size_t i) {
    std::string content;
    if (!ReadFile(disk_paths[i], &content)) {
      read_errors[i] = "cannot read: " + disk_paths[i].string();
      return;
    }
    units[i] = MakeFileUnit(rel_paths[i], std::move(content));
  });
  for (const std::string& e : read_errors) {
    if (!e.empty()) {
      *error = e;
      return false;
    }
  }
  report->files_scanned = targets.size();

  // Pass 1c: the cross-file context — Status-function registry and the
  // project model (include graph, symbol index, annotations).
  RuleContext ctx;
  ctx.config = &config;
  for (const FileUnit& unit : units)
    HarvestStatusFunctions(unit, &ctx.status_functions);
  for (const std::string& extra :
       config.GetList("rule.sc-discarded-status", "functions"))
    ctx.status_functions.insert(extra);
  ProjectModel model = ProjectModel::Build(units);
  ctx.model = &model;

  // Pass 2: rules over the target units, one task per unit. The model is
  // immutable now, so workers share it without synchronization — the same
  // shared-immutable-plan discipline sc-plan-mutation enforces.
  std::vector<std::vector<Finding>> per_unit(units.size());
  pool.ParallelFor(0, units.size(), 1, [&](size_t i) {
    if (targets.count(units[i].path) == 0) return;
    per_unit[i] = LintUnit(units[i], config, ctx);
  });
  for (std::vector<Finding>& findings : per_unit) {
    for (Finding& f : findings) report->findings.push_back(std::move(f));
  }

  // Total order (message included as the final tiebreak) => byte-identical
  // output regardless of job count or rule execution order.
  std::sort(report->findings.begin(), report->findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.path, a.line, a.col, a.rule, a.message) <
                     std::tie(b.path, b.line, b.col, b.rule, b.message);
            });
  for (const Finding& f : report->findings) {
    if (f.severity == Severity::kError)
      ++report->errors;
    else
      ++report->warnings;
  }
  return true;
}

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.path << ':' << finding.line << ':' << finding.col << ": "
      << (finding.severity == Severity::kError ? "error" : "warning")
      << ": [" << finding.rule << "] " << finding.message;
  return out.str();
}

std::string FormatFindingGitHub(const Finding& finding) {
  // Workflow commands use %/CR/LF escapes in the message body.
  std::string message;
  message.reserve(finding.message.size());
  for (char c : finding.message) {
    switch (c) {
      case '%':
        message += "%25";
        break;
      case '\r':
        message += "%0D";
        break;
      case '\n':
        message += "%0A";
        break;
      default:
        message.push_back(c);
    }
  }
  std::ostringstream out;
  out << "::" << (finding.severity == Severity::kError ? "error" : "warning")
      << " file=" << finding.path << ",line=" << finding.line
      << ",col=" << finding.col << ",title=" << finding.rule
      << "::" << message;
  return out.str();
}

}  // namespace sclint

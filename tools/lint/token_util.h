#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

/// \file token_util.h
/// Token-stream matching helpers shared by the per-file rules (rules.cc)
/// and the cross-TU model builder (model.cc). All functions operate on the
/// code-token stream (comments/literals/directives pre-filtered).

namespace sclint {

inline bool TokenIs(const Token& t, std::string_view s) { return t.text == s; }

/// code[i].text == s, with bounds check.
inline bool TokenAt(const std::vector<Token>& code, size_t i,
                    std::string_view s) {
  return i < code.size() && code[i].text == s;
}

inline bool TokenIsIdent(const std::vector<Token>& code, size_t i) {
  return i < code.size() && code[i].kind == TokenKind::kIdentifier;
}

/// Index of the matching close paren/brace/bracket for the opener at `i`,
/// or code.size() when unbalanced.
inline size_t MatchForward(const std::vector<Token>& code, size_t i) {
  std::string_view open = code[i].text;
  std::string_view close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (size_t j = i; j < code.size(); ++j) {
    if (code[j].text == open) ++depth;
    if (code[j].text == close && --depth == 0) return j;
  }
  return code.size();
}

/// Index of the matching opener for the closer at `i`; false when
/// unbalanced.
inline bool MatchBackward(const std::vector<Token>& code, size_t i,
                          size_t* opener) {
  std::string_view close = code[i].text;
  std::string_view open = close == ")" ? "(" : close == "}" ? "{" : "[";
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (code[j].text == close) ++depth;
    if (code[j].text == open && --depth == 0) {
      *opener = j;
      return true;
    }
  }
  return false;
}

/// For a `<` at `i` that opens a template-argument list, the index of its
/// matching `>`. Returns `i` (no advance) when the angles do not balance
/// before a `;`/`{`/`}` — i.e. when `<` was a comparison, not a template.
inline size_t SkipAngles(const std::vector<Token>& code, size_t i) {
  int depth = 0;
  for (size_t j = i; j < code.size(); ++j) {
    std::string_view t = code[j].text;
    if (t == "<") ++depth;
    if (t == ">" && --depth == 0) return j;
    if (t == ";" || t == "{" || t == "}") break;
    // Parenthesized groups may contain unpaired angle tokens (operator<,
    // shifts); skip them wholesale.
    if (t == "(") j = MatchForward(code, j);
  }
  return i;
}

}  // namespace sclint

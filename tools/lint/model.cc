#include "lint/model.h"

#include <algorithm>
#include <functional>
#include <string_view>
#include <utility>

#include "lint/token_util.h"

namespace sclint {
namespace {

/// Keywords that must never enter the symbol index as declared names.
bool IsReservedWord(std::string_view s) {
  static const std::set<std::string, std::less<>> kReserved = {
      "alignas",    "alignof",  "auto",      "bool",      "break",
      "case",       "catch",    "char",      "class",     "co_await",
      "co_return",  "co_yield", "const",     "constexpr", "consteval",
      "constinit",  "continue", "decltype",  "default",   "delete",
      "do",         "double",   "else",      "enum",      "explicit",
      "extern",     "false",    "final",     "float",     "for",
      "friend",     "goto",     "if",        "inline",    "int",
      "long",       "mutable",  "namespace", "new",       "noexcept",
      "nullptr",    "operator", "override",  "private",   "protected",
      "public",     "return",   "short",     "signed",    "sizeof",
      "static",     "struct",   "switch",    "template",  "this",
      "throw",      "true",     "try",       "typedef",   "typeid",
      "typename",   "union",    "unsigned",  "using",     "virtual",
      "void",       "volatile", "while",
  };
  return kReserved.count(s) > 0;
}

/// Keywords after which an identifier is an expression operand, not a
/// declared name (`return x;` must not index `x`).
bool IsStatementKeyword(std::string_view s) {
  static const std::set<std::string, std::less<>> kStmt = {
      "return", "if",    "while",     "for",      "switch",  "case",
      "new",    "delete", "throw",    "else",     "do",      "sizeof",
      "alignof", "goto",  "co_return", "co_await", "co_yield",
  };
  return kStmt.count(s) > 0;
}

/// Lexically normalizes a forward-slash path: resolves `.` and `..`
/// segments without touching the filesystem.
std::string NormalizePath(std::string_view path) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (start <= path.size()) {
    size_t slash = path.find('/', start);
    if (slash == std::string_view::npos) slash = path.size();
    std::string_view part = path.substr(start, slash - start);
    if (part == "..") {
      if (!parts.empty() && parts.back() != "..")
        parts.pop_back();
      else
        parts.push_back(part);
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    start = slash + 1;
  }
  std::string out;
  for (std::string_view part : parts) {
    if (!out.empty()) out.push_back('/');
    out.append(part);
  }
  return out;
}

std::string Dirname(std::string_view path) {
  size_t slash = path.rfind('/');
  return slash == std::string_view::npos ? std::string()
                                         : std::string(path.substr(0, slash));
}

/// Resolves a quoted include against the scanned file set. Candidates, in
/// order: sibling of the including file, then the repo's include roots
/// (src/, tools/, tests/ — matching the -I dirs in CMakeLists), then the
/// target as-is (fixture trees lint with root = the fixture dir itself).
std::string ResolveInclude(const std::map<std::string, FileNode>& files,
                           const std::string& includer,
                           const std::string& target) {
  std::vector<std::string> candidates;
  std::string dir = Dirname(includer);
  if (!dir.empty()) candidates.push_back(NormalizePath(dir + "/" + target));
  candidates.push_back("src/" + target);
  candidates.push_back("tools/" + target);
  candidates.push_back("tests/" + target);
  candidates.push_back(NormalizePath(target));
  for (const std::string& c : candidates) {
    if (files.count(c) > 0) return c;
  }
  return std::string();
}

}  // namespace

std::vector<ClassRegion> FindClassRegions(const std::vector<Token>& code) {
  std::vector<ClassRegion> regions;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    std::string_view kw = code[i].text;
    if (kw != "class" && kw != "struct" && kw != "union") continue;
    if (i > 0 && TokenIs(code[i - 1], "enum")) continue;  // enum class
    if (!TokenIsIdent(code, i + 1)) continue;             // anonymous
    std::string name(code[i + 1].text);
    size_t after = i + 2;
    if (TokenAt(code, after, "final")) ++after;
    if (!TokenAt(code, after, "{") && !TokenAt(code, after, ":")) continue;
    // Scan to the body's `{`, skipping template args in base specifiers.
    size_t open = after;
    while (open < code.size() && !TokenIs(code[open], "{")) {
      if (TokenIs(code[open], ";")) break;
      if (TokenIs(code[open], "<")) open = SkipAngles(code, open);
      ++open;
    }
    if (!TokenAt(code, open, "{")) continue;
    size_t close = MatchForward(code, open);
    if (close >= code.size()) continue;
    regions.push_back(ClassRegion{std::move(name), open, close});
  }
  return regions;
}

const ClassRegion* InnermostRegion(const std::vector<ClassRegion>& regions,
                                   size_t i) {
  const ClassRegion* best = nullptr;
  for (const ClassRegion& r : regions) {
    if (i <= r.open || i >= r.close) continue;
    if (best == nullptr || r.close - r.open < best->close - best->open)
      best = &r;
  }
  return best;
}

std::vector<std::string> ParenArgNames(const std::vector<Token>& code,
                                       size_t open, size_t close) {
  std::vector<std::string> names;
  std::string last;
  int depth = 0;
  for (size_t i = open + 1; i < close; ++i) {
    std::string_view t = code[i].text;
    if (t == "(" || t == "[") ++depth;
    if (t == ")" || t == "]") --depth;
    if (depth == 0 && t == ",") {
      if (!last.empty()) names.push_back(std::move(last));
      last.clear();
      continue;
    }
    if (code[i].kind == TokenKind::kIdentifier) last = std::string(t);
  }
  if (!last.empty()) names.push_back(std::move(last));
  return names;
}

namespace {

/// Harvests SC_GUARDED_BY / SC_REQUIRES annotations from every class body
/// in the unit into the cross-TU class index.
void HarvestAnnotations(const FileUnit& unit,
                        std::map<std::string, ClassAnnotations>* classes) {
  const std::vector<Token>& code = unit.code;
  std::vector<ClassRegion> regions = FindClassRegions(code);
  if (regions.empty()) return;

  for (size_t i = 0; i + 1 < code.size(); ++i) {
    std::string_view t = code[i].text;
    bool guarded = t == "SC_GUARDED_BY";
    bool requires_mu = t == "SC_REQUIRES";
    if (!guarded && !requires_mu) continue;
    if (!TokenAt(code, i + 1, "(")) continue;
    const ClassRegion* region = InnermostRegion(regions, i);
    if (region == nullptr) continue;  // out-of-line use; declaration rules
    size_t close = MatchForward(code, i + 1);
    if (close >= code.size()) continue;
    std::vector<std::string> mutexes = ParenArgNames(code, i + 1, close);
    if (mutexes.empty()) continue;

    if (guarded) {
      // `int count_ SC_GUARDED_BY(mu_) = 0;` — member is the identifier
      // directly before the macro.
      if (i == 0 || code[i - 1].kind != TokenKind::kIdentifier) continue;
      (*classes)[region->name].guarded_members[std::string(code[i - 1].text)] =
          mutexes.front();
    } else {
      // `void Reset() SC_REQUIRES(mu_);` — walk back over the parameter
      // list (and trailing const/noexcept) to the method name.
      size_t j = i;
      while (j > 0 && (TokenIs(code[j - 1], "const") ||
                       TokenIs(code[j - 1], "noexcept") ||
                       TokenIs(code[j - 1], "override") ||
                       TokenIs(code[j - 1], "final")))
        --j;
      if (j == 0 || !TokenIs(code[j - 1], ")")) continue;
      size_t params_open = 0;
      if (!MatchBackward(code, j - 1, &params_open) || params_open == 0)
        continue;
      if (code[params_open - 1].kind != TokenKind::kIdentifier) continue;
      std::set<std::string>& mu_set =
          (*classes)[region->name]
              .required_mutexes[std::string(code[params_open - 1].text)];
      mu_set.insert(mutexes.begin(), mutexes.end());
    }
  }
}

/// Marks every code-token index that lies inside a function (or control
/// statement) body: any `{...}` group directly following a `)` and its
/// qualifiers. Locals declared there (`i`, `out`, `min`, ...) are not part
/// of a file's API, and harvesting them would mark nearly every header as
/// used by nearly every file.
std::vector<char> FunctionBodyMask(const std::vector<Token>& code) {
  std::vector<char> mask(code.size(), 0);
  for (size_t i = 0; i < code.size(); ++i) {
    if (!TokenIs(code[i], ")")) continue;
    // Generous qualifier walk (over-masking only trims the harvest):
    // const/noexcept/ref-qualifiers, trailing return types, annotation
    // macros with their own paren groups.
    size_t q = i + 1;
    while (q < code.size()) {
      std::string_view t = code[q].text;
      if (t == "{") break;
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "&" || t == "->" || t == "::" ||
          code[q].kind == TokenKind::kIdentifier) {
        ++q;
        if (TokenAt(code, q, "(")) {
          q = MatchForward(code, q);
          if (q >= code.size()) break;
          ++q;
        }
        continue;
      }
      if (t == "<") {
        size_t g = SkipAngles(code, q);
        if (g == q) break;
        q = g + 1;
        continue;
      }
      break;
    }
    if (q >= code.size() || !TokenIs(code[q], "{")) continue;
    size_t close = MatchForward(code, q);
    if (close >= code.size()) continue;
    for (size_t k = q; k <= close; ++k) mask[k] = 1;
    i = q;  // inner bodies re-mask harmlessly
  }
  return mask;
}

/// Harvests the names a file declares, for sc-unused-include's "does the
/// including file mention anything the header provides" check. The harvest
/// deliberately over-approximates (extra symbols only suppress findings,
/// never create them): type/macro/alias names exactly, function and
/// variable names by local token-shape heuristics at namespace/class
/// scope (function bodies are masked out).
std::set<std::string> HarvestSymbols(const FileUnit& unit) {
  std::set<std::string> out(unit.defines.begin(), unit.defines.end());
  const std::vector<Token>& code = unit.code;
  std::vector<char> in_body = FunctionBodyMask(code);
  for (size_t i = 0; i < code.size(); ++i) {
    std::string_view t = code[i].text;

    // class/struct/union/enum [class|struct] Name — definitions AND
    // forward declarations both count as providing the name. Namespace
    // names deliberately do NOT: every file reopens `namespace
    // smartcrawl`, so counting them would mark every header as used
    // everywhere and blind sc-unused-include completely.
    if (t == "class" || t == "struct" || t == "union") {
      if (TokenIsIdent(code, i + 1) && !IsReservedWord(code[i + 1].text))
        out.insert(std::string(code[i + 1].text));
      continue;
    }
    if (t == "enum") {
      size_t j = i + 1;
      if (TokenAt(code, j, "class") || TokenAt(code, j, "struct")) ++j;
      if (TokenIsIdent(code, j)) out.insert(std::string(code[j].text));
      continue;
    }
    // using Alias = ...;
    if (t == "using" && TokenIsIdent(code, i + 1) &&
        TokenAt(code, i + 2, "=")) {
      out.insert(std::string(code[i + 1].text));
      continue;
    }

    if (code[i].kind != TokenKind::kIdentifier || IsReservedWord(t) ||
        i == 0 || in_body[i] != 0)
      continue;
    const Token& prev = code[i - 1];
    bool prev_declish =
        (prev.kind == TokenKind::kIdentifier &&
         !IsStatementKeyword(prev.text)) ||
        prev.text == ">" || prev.text == "*" || prev.text == "&";
    if (!prev_declish) continue;
    // `Type Name(` — function (or variable with ctor args; both declared).
    // `Type name =` / `Type name;` / `Type name[` — variable.
    std::string_view next = i + 1 < code.size() ? code[i + 1].text : "";
    if (next == "(" || next == "=" || next == ";" || next == "[")
      out.insert(std::string(t));
  }
  return out;
}

}  // namespace

ProjectModel ProjectModel::Build(const std::vector<FileUnit>& units) {
  ProjectModel model;
  for (const FileUnit& unit : units) {
    FileNode& node = model.files_[unit.path];
    node.unit = &unit;
    node.declared_symbols = HarvestSymbols(unit);
    HarvestAnnotations(unit, &model.classes_);
  }
  for (auto& [path, node] : model.files_) {
    const std::vector<IncludeDirective>& incs = node.unit->includes;
    for (size_t i = 0; i < incs.size(); ++i) {
      if (incs[i].angled) continue;  // system headers are outside the model
      std::string resolved = ResolveInclude(model.files_, path, incs[i].target);
      if (!resolved.empty())
        node.resolved_includes.emplace_back(i, std::move(resolved));
    }
  }

  // Tarjan's SCC over the resolved include graph. Components pop in
  // reverse topological order, so when one pops, the closures of every
  // file it reaches outside the component are already final — the
  // component's closure is its members' symbols plus those.
  struct TarjanState {
    size_t index = 0;
    size_t lowlink = 0;
    bool on_stack = false;
    bool visited = false;
  };
  std::map<std::string, TarjanState> state;
  std::vector<std::string> stack;
  size_t next_index = 0;

  std::function<void(const std::string&)> strongconnect =
      [&](const std::string& path) {
        TarjanState& st = state[path];
        st.index = st.lowlink = next_index++;
        st.visited = true;
        st.on_stack = true;
        stack.push_back(path);

        const FileNode& node = model.files_.at(path);
        bool self_edge = false;
        for (const auto& [_, target] : node.resolved_includes) {
          if (target == path) self_edge = true;
          TarjanState& ts = state[target];
          if (!ts.visited) {
            strongconnect(target);
            st.lowlink = std::min(st.lowlink, state[target].lowlink);
          } else if (ts.on_stack) {
            st.lowlink = std::min(st.lowlink, ts.index);
          }
        }

        if (st.lowlink != st.index) return;
        // Pop one complete SCC.
        std::vector<std::string> members;
        while (true) {
          std::string m = stack.back();
          stack.pop_back();
          state[m].on_stack = false;
          members.push_back(std::move(m));
          if (members.back() == path) break;
        }
        std::sort(members.begin(), members.end());

        std::set<std::string> closure;
        std::set<std::string> in_scc(members.begin(), members.end());
        for (const std::string& m : members) {
          const FileNode& mn = model.files_.at(m);
          closure.insert(mn.declared_symbols.begin(),
                         mn.declared_symbols.end());
          for (const auto& [_, target] : mn.resolved_includes) {
            if (in_scc.count(target) > 0) continue;
            const std::set<std::string>& sub = model.closures_[target];
            closure.insert(sub.begin(), sub.end());
          }
        }
        bool cyclic = members.size() > 1 || self_edge;
        if (cyclic) {
          size_t id = model.cycles_.size();
          for (const std::string& m : members) model.cycle_of_[m] = id;
          model.cycles_.push_back(members);
        }
        for (const std::string& m : members) model.closures_[m] = closure;
      };

  for (const auto& [path, _] : model.files_) {
    if (!state[path].visited) strongconnect(path);
  }
  return model;
}

const FileNode* ProjectModel::Node(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

const ClassAnnotations* ProjectModel::Class(const std::string& name) const {
  auto it = classes_.find(name);
  return it == classes_.end() ? nullptr : &it->second;
}

const std::set<std::string>& ProjectModel::ClosureSymbols(
    const std::string& path) const {
  static const std::set<std::string> kEmpty;
  auto it = closures_.find(path);
  return it == closures_.end() ? kEmpty : it->second;
}

const std::vector<std::string>* ProjectModel::CycleOf(
    const std::string& path) const {
  auto it = cycle_of_.find(path);
  return it == cycle_of_.end() ? nullptr : &cycles_[it->second];
}

std::vector<std::string> ProjectModel::AnnotatedClasses() const {
  std::vector<std::string> names;
  names.reserve(classes_.size());
  for (const auto& [name, _] : classes_) names.push_back(name);
  return names;
}

}  // namespace sclint

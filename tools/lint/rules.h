#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/lexer.h"

/// \file rules.h
/// The sc_lint rule registry.
///
/// Each rule is data + a matcher over the token stream of one file. Rules
/// enforce three families of project invariants (see
/// docs/static-analysis.md):
///   determinism  — no ambient randomness, wall clocks, or real sleeps;
///   status       — no silently discarded Status/Result values, no
///                  ownerless TODOs;
///   hygiene      — include guards, no `using namespace` in headers,
///                  direct includes for designated tokens.
///
/// Severity and per-path allowlists come from `.sclint.toml`; inline
/// escapes are `// NOLINT(sc-<rule>)` and `// NOLINTNEXTLINE(sc-<rule>)`.

namespace sclint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  Severity severity = Severity::kError;
};

/// One lexed translation unit plus derived facts rules need.
struct FileUnit {
  std::string path;     // normalized, forward slashes, relative to root
  std::string content;  // owns the bytes the token views point into
  std::vector<Token> tokens;  // full stream (comments, directives, ...)
  std::vector<Token> code;    // identifiers/numbers/punctuation only
  std::vector<std::string> includes;  // `#include` targets, as written
  bool is_header = false;
};

/// Cross-file facts shared by all rules.
struct RuleContext {
  const Config* config = nullptr;
  /// Names of functions whose declared return type is Status or
  /// Result<...>, harvested from every scanned file (plus any extras from
  /// `[rule.sc-discarded-status] functions`).
  std::set<std::string> status_functions;
};

using RuleFn = std::function<void(const FileUnit&, const RuleContext&,
                                  std::vector<Finding>*)>;

struct RuleDef {
  std::string name;  // "sc-banned-rand", ...
  Severity default_severity;
  std::string summary;  // one-liner for --list-rules and the docs
  RuleFn check;
};

/// All built-in rules, in reporting order.
const std::vector<RuleDef>& AllRules();

/// Builds a FileUnit from file text (lexes, classifies, extracts includes).
FileUnit MakeFileUnit(std::string path, std::string content);

/// Scans one unit for Status/Result<...>-returning function declarations
/// and adds their names to `out`.
void HarvestStatusFunctions(const FileUnit& unit, std::set<std::string>* out);

}  // namespace sclint

#pragma once

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "lint/config.h"
#include "lint/lexer.h"

/// \file rules.h
/// The sc_lint rule registry.
///
/// Each rule is data + a matcher over the token stream of one file, plus
/// (for the cross-TU rules) the project model built in pass 1 over every
/// scanned file. Rules enforce four families of project invariants (see
/// docs/static-analysis.md):
///   determinism  — no ambient randomness, wall clocks, or real sleeps;
///   status       — no silently discarded Status/Result values, no
///                  ownerless TODOs;
///   hygiene      — include guards, no `using namespace` in headers,
///                  direct includes for designated tokens, no unused
///                  project includes;
///   structure    — the layer DAG (`sc-layer-dag`), include-cycle freedom
///                  (`sc-include-cycle`), and mutex discipline over
///                  SC_GUARDED_BY-annotated members (`sc-guarded-by`).
///
/// Severity and per-path allowlists come from `.sclint.toml`; inline
/// escapes are `// NOLINT(sc-<rule>)` and `// NOLINTNEXTLINE(sc-<rule>)`.

namespace sclint {

enum class Severity { kWarning, kError };

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;
  std::string rule;
  std::string message;
  Severity severity = Severity::kError;
};

/// One `#include` directive with its position, for rules that report on
/// the include line itself (layer DAG, cycles, unused includes).
struct IncludeDirective {
  std::string target;  // as written between the delimiters
  int line = 0;
  int col = 0;
  bool angled = false;  // <...> (system) vs "..." (project)
};

/// One lexed translation unit plus derived facts rules need.
struct FileUnit {
  std::string path;     // normalized, forward slashes, relative to root
  std::string content;  // owns the bytes the token views point into
  std::vector<Token> tokens;  // full stream (comments, directives, ...)
  std::vector<Token> code;    // identifiers/numbers/punctuation only
  std::vector<IncludeDirective> includes;  // `#include` targets, in order
  std::vector<std::string> defines;        // `#define` macro names
  bool is_header = false;
};

class ProjectModel;  // model.h — the pass-1 cross-TU project model

/// Cross-file facts shared by all rules.
struct RuleContext {
  const Config* config = nullptr;
  /// Names of functions whose declared return type is Status or
  /// Result<...>, harvested from every scanned file (plus any extras from
  /// `[rule.sc-discarded-status] functions`).
  std::set<std::string> status_functions;
  /// Pass-1 project model (include graph, symbol index, annotations);
  /// null only in unit tests that drive a single rule directly, in which
  /// case the cross-TU rules stay silent.
  const ProjectModel* model = nullptr;
};

using RuleFn = std::function<void(const FileUnit&, const RuleContext&,
                                  std::vector<Finding>*)>;

struct RuleDef {
  std::string name;  // "sc-banned-rand", ...
  Severity default_severity;
  std::string summary;  // one-liner for --list-rules and the docs
  RuleFn check;
};

/// All built-in rules, in reporting order.
const std::vector<RuleDef>& AllRules();

/// Builds a FileUnit from file text (lexes, classifies, extracts includes).
FileUnit MakeFileUnit(std::string path, std::string content);

/// Scans one unit for Status/Result<...>-returning function declarations
/// and adds their names to `out`.
void HarvestStatusFunctions(const FileUnit& unit, std::set<std::string>* out);

}  // namespace sclint

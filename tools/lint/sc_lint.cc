#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.h"

/// \file sc_lint.cc
/// CLI for the project linter. See docs/static-analysis.md.
///
///   sc_lint [--root=DIR] [--config=FILE] [--jobs=N] [--format=gcc|github]
///           [--list-rules] [files...]
///
/// With no files, walks the roots from `.sclint.toml` ([lint] roots,
/// default src/ tools/ bench/). The cross-TU project model is always built
/// from the full walk, even when specific files are given. Exit status:
/// 0 clean (warnings allowed), 1 at least one error-severity finding,
/// 2 operational failure.

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: sc_lint [--root=DIR] [--config=FILE] [--jobs=N]"
         " [--format=gcc|github] [--list-rules] [files...]\n"
         "Project static analysis: enforces smartcrawl's determinism,\n"
         "status-discipline, header-hygiene and structure invariants.\n"
         "  --jobs=N     lex and lint on N threads (0 = all cores);\n"
         "               output is byte-identical at any job count\n"
         "  --format     gcc (default, editor-clickable) or github\n"
         "               (::error workflow commands for PR annotations)\n"
         "Suppress one finding: // NOLINT(sc-<rule>)  or  "
         "// NOLINTNEXTLINE(sc-<rule>)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  sclint::LintOptions options;
  bool github_format = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg.rfind("--config=", 0) == 0) {
      options.config_path = arg.substr(9);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      char* end = nullptr;
      unsigned long jobs = std::strtoul(arg.c_str() + 7, &end, 10);
      if (end == nullptr || *end != '\0') {
        std::cerr << "sc_lint: bad --jobs value: " << arg << '\n';
        return Usage(std::cerr, 2);
      }
      options.jobs = static_cast<unsigned>(jobs);
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string format = arg.substr(9);
      if (format == "github") {
        github_format = true;
      } else if (format != "gcc") {
        std::cerr << "sc_lint: unknown format: " << format << '\n';
        return Usage(std::cerr, 2);
      }
    } else if (arg == "--list-rules") {
      for (const sclint::RuleDef& rule : sclint::AllRules())
        std::cout << rule.name << ": " << rule.summary << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sc_lint: unknown flag: " << arg << '\n';
      return Usage(std::cerr, 2);
    } else {
      options.files.push_back(arg);
    }
  }

  sclint::LintReport report;
  std::string error;
  if (!sclint::RunLint(options, &report, &error)) {
    std::cerr << "sc_lint: " << error << '\n';
    return 2;
  }
  for (const sclint::Finding& finding : report.findings)
    std::cout << (github_format ? sclint::FormatFindingGitHub(finding)
                                : sclint::FormatFinding(finding))
              << '\n';
  std::cerr << "sc_lint: " << report.files_scanned << " files, "
            << report.errors << " error(s), " << report.warnings
            << " warning(s)\n";
  return report.errors > 0 ? 1 : 0;
}

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/driver.h"

/// \file sc_lint.cc
/// CLI for the project linter. See docs/static-analysis.md.
///
///   sc_lint [--root=DIR] [--config=FILE] [--list-rules] [files...]
///
/// With no files, walks the roots from `.sclint.toml` ([lint] roots,
/// default src/ tools/ bench/). Exit status: 0 clean (warnings allowed),
/// 1 at least one error-severity finding, 2 operational failure.

namespace {

int Usage(std::ostream& out, int code) {
  out << "usage: sc_lint [--root=DIR] [--config=FILE] [--list-rules]"
         " [files...]\n"
         "Project static analysis: enforces smartcrawl's determinism,\n"
         "status-discipline and header-hygiene invariants.\n"
         "Suppress one finding: // NOLINT(sc-<rule>)  or  "
         "// NOLINTNEXTLINE(sc-<rule>)\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  sclint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      options.root = arg.substr(7);
    } else if (arg.rfind("--config=", 0) == 0) {
      options.config_path = arg.substr(9);
    } else if (arg == "--list-rules") {
      for (const sclint::RuleDef& rule : sclint::AllRules())
        std::cout << rule.name << ": " << rule.summary << '\n';
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "sc_lint: unknown flag: " << arg << '\n';
      return Usage(std::cerr, 2);
    } else {
      options.files.push_back(arg);
    }
  }

  sclint::LintReport report;
  std::string error;
  if (!sclint::RunLint(options, &report, &error)) {
    std::cerr << "sc_lint: " << error << '\n';
    return 2;
  }
  for (const sclint::Finding& finding : report.findings)
    std::cout << sclint::FormatFinding(finding) << '\n';
  std::cerr << "sc_lint: " << report.files_scanned << " files, "
            << report.errors << " error(s), " << report.warnings
            << " warning(s)\n";
  return report.errors > 0 ? 1 : 0;
}

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/rules.h"

/// \file model.h
/// The pass-1 cross-translation-unit project model.
///
/// sc_lint used to be a single-pass, per-file scanner; the structural
/// invariants added with the multi-tenant CrawlService (one immutable
/// CrawlPlan shared by N concurrent sessions) need facts no single file
/// contains: which header includes which, which class members are
/// annotated SC_GUARDED_BY which mutex, and which symbols a header
/// actually provides. Pass 1 builds this model over every scanned file;
/// pass 2 runs the cross-file rules (sc-layer-dag, sc-include-cycle,
/// sc-guarded-by, sc-unused-include) against it.
///
/// Everything here is immutable after Build(), so pass 2 can run over the
/// model from many lint worker threads without synchronization — the same
/// shared-immutable-artifact discipline the model exists to enforce.

namespace sclint {

/// A class/struct/union *definition* found in a code-token stream;
/// `open`/`close` are the token indices of its body braces.
struct ClassRegion {
  std::string name;
  size_t open = 0;
  size_t close = 0;
};

/// Finds every class definition and its body extent. `template <class T>`
/// parameters, forward declarations and elaborated type specifiers in
/// declarations (`struct tm t;`) are all skipped: a definition is
/// recognized by `{`, `:` (base clause) or `final` directly after the name.
std::vector<ClassRegion> FindClassRegions(const std::vector<Token>& code);

/// Innermost region containing code index `i`, or null.
const ClassRegion* InnermostRegion(const std::vector<ClassRegion>& regions,
                                   size_t i);

/// Last identifier of each top-level comma-separated argument inside the
/// paren group [open, close] — the mutex names in SC_GUARDED_BY(mu) /
/// std::scoped_lock l(a, b). "Last identifier" so `impl_->mu` names `mu`.
std::vector<std::string> ParenArgNames(const std::vector<Token>& code,
                                       size_t open, size_t close);

/// Per-class facts harvested from `class`/`struct` bodies anywhere in the
/// scanned tree. Keyed by the class's unqualified name: annotations live
/// in headers while the member-function bodies that must honor them live
/// in .cc files, which is exactly why this index is cross-TU.
struct ClassAnnotations {
  /// Data member name -> the mutex named in its SC_GUARDED_BY(mu).
  std::map<std::string, std::string> guarded_members;
  /// Member-function name -> mutexes named in SC_REQUIRES(...) on its
  /// in-class declaration (out-of-line definitions may not repeat the
  /// annotation; the model carries it to them).
  std::map<std::string, std::set<std::string>> required_mutexes;
};

/// One file in the include graph.
struct FileNode {
  const FileUnit* unit = nullptr;
  /// For each quoted include that resolves to a scanned file: index into
  /// unit->includes and the resolved repo-relative path.
  std::vector<std::pair<size_t, std::string>> resolved_includes;
  /// Symbols this file declares (classes, functions, variables, macros).
  std::set<std::string> declared_symbols;
};

class ProjectModel {
 public:
  /// Builds the model over all lexed units. The units vector must outlive
  /// the model (FileNode keeps pointers into it).
  static ProjectModel Build(const std::vector<FileUnit>& units);

  /// Node for a repo-relative path, or null when the path was not scanned.
  const FileNode* Node(const std::string& path) const;

  /// Annotations for an unqualified class name, or null when the class has
  /// no SC_GUARDED_BY/SC_REQUIRES annotations anywhere in the tree.
  const ClassAnnotations* Class(const std::string& name) const;

  /// Union of declared_symbols over `path` and its transitive resolved
  /// includes (empty set for unscanned paths). Precomputed in Build.
  const std::set<std::string>& ClosureSymbols(const std::string& path) const;

  /// When `path` is part of a non-trivial include SCC (a cycle), the
  /// sorted member paths of that SCC; null otherwise.
  const std::vector<std::string>* CycleOf(const std::string& path) const;

  /// All annotated class names (exposed for tests).
  std::vector<std::string> AnnotatedClasses() const;

 private:
  std::map<std::string, FileNode> files_;
  std::map<std::string, ClassAnnotations> classes_;
  std::map<std::string, std::set<std::string>> closures_;
  /// path -> cycle id, and cycle id -> sorted members, for files in
  /// include SCCs of size > 1 (or with a self-edge).
  std::map<std::string, size_t> cycle_of_;
  std::vector<std::vector<std::string>> cycles_;
};

}  // namespace sclint

#pragma once

#include <string>
#include <vector>

#include "lint/rules.h"

/// \file driver.h
/// Orchestrates a lint run: collects files, builds the cross-file
/// Status-function registry, applies rules, and filters findings through
/// per-path allowlists, severity overrides, and NOLINT suppressions.

namespace sclint {

struct LintOptions {
  /// Repository root; config paths and reported paths are relative to it.
  std::string root = ".";
  /// Path to `.sclint.toml`. Empty: use `<root>/.sclint.toml` when present,
  /// built-in defaults otherwise.
  std::string config_path;
  /// Explicit files to lint (relative to root or absolute). Empty: walk
  /// the roots configured under `[lint] roots`.
  std::vector<std::string> files;
};

struct LintReport {
  std::vector<Finding> findings;  // sorted by path, line, col
  size_t files_scanned = 0;
  size_t errors = 0;
  size_t warnings = 0;
};

/// Runs the linter. Returns false on an operational failure (bad config,
/// unreadable root) with `error` set; findings are NOT an operational
/// failure.
bool RunLint(const LintOptions& options, LintReport* report,
             std::string* error);

/// GCC-style, editor-clickable: `path:line:col: error: [sc-rule] message`.
std::string FormatFinding(const Finding& finding);

}  // namespace sclint

#pragma once

#include <string>
#include <vector>

#include "lint/rules.h"

/// \file driver.h
/// Orchestrates a lint run in two passes. Pass 1 collects and lexes every
/// file under the configured roots and builds the cross-TU ProjectModel
/// (include graph, symbol index, thread-safety annotations) — even when
/// only specific files were requested, so single-file lints see the same
/// cross-file context as a full walk. Pass 2 runs the rules over the
/// requested files (optionally across a thread pool) and filters findings
/// through per-path allowlists, severity overrides, and NOLINT
/// suppressions.

namespace sclint {

struct LintOptions {
  /// Repository root; config paths and reported paths are relative to it.
  std::string root = ".";
  /// Path to `.sclint.toml`. Empty: use `<root>/.sclint.toml` when present,
  /// built-in defaults otherwise.
  std::string config_path;
  /// Explicit files to lint (relative to root or absolute). Empty: lint
  /// everything under `[lint] roots`. The project model is always built
  /// from the full root walk regardless of this list.
  std::vector<std::string> files;
  /// Worker threads for lexing and rule execution. 1 = sequential (the
  /// default), 0 = hardware concurrency. Output is byte-identical at any
  /// job count: per-file results are merged in path order and the final
  /// sort is total.
  unsigned jobs = 1;
};

struct LintReport {
  std::vector<Finding> findings;  // sorted by path, line, col, rule
  size_t files_scanned = 0;
  size_t errors = 0;
  size_t warnings = 0;
};

/// Runs the linter. Returns false on an operational failure (bad config,
/// unreadable root) with `error` set; findings are NOT an operational
/// failure.
bool RunLint(const LintOptions& options, LintReport* report,
             std::string* error);

/// GCC-style, editor-clickable: `path:line:col: error: [sc-rule] message`.
std::string FormatFinding(const Finding& finding);

/// GitHub Actions workflow-command style, rendered by the Checks UI as an
/// inline annotation on the PR diff:
/// `::error file=path,line=N,col=N,title=sc-rule::message`.
std::string FormatFindingGitHub(const Finding& finding);

}  // namespace sclint

#include "lint/config.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace sclint {
namespace {

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0)
    --e;
  return s.substr(b, e - b);
}

/// Strips a trailing `# comment` that is not inside a quoted string.
std::string StripComment(const std::string& line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (c == '#' && !in_string) return line.substr(0, i);
  }
  return line;
}

/// Parses one scalar: quoted string, bool, or bare number.
bool ParseScalar(const std::string& raw, std::string* out,
                 std::string* error) {
  std::string v = Trim(raw);
  if (v.empty()) {
    *error = "empty value";
    return false;
  }
  if (v.front() == '"') {
    if (v.size() < 2 || v.back() != '"') {
      *error = "unterminated string: " + v;
      return false;
    }
    std::string decoded;
    for (size_t i = 1; i + 1 < v.size(); ++i) {
      if (v[i] == '\\' && i + 2 < v.size()) {
        ++i;
        switch (v[i]) {
          case 'n': decoded.push_back('\n'); break;
          case 't': decoded.push_back('\t'); break;
          default: decoded.push_back(v[i]); break;
        }
      } else {
        decoded.push_back(v[i]);
      }
    }
    *out = decoded;
    return true;
  }
  *out = v;  // bools and numbers keep their literal spelling
  return true;
}

}  // namespace

bool Config::Parse(const std::string& text, std::string* error) {
  std::istringstream in(text);
  std::string line;
  std::string section;
  int lineno = 0;
  // Multi-line arrays: accumulate until the closing bracket.
  std::string pending_key;
  std::string pending_value;
  bool in_array = false;

  auto fail = [&](const std::string& msg) {
    *error = "line " + std::to_string(lineno) + ": " + msg;
    return false;
  };

  auto commit_array = [&]() -> bool {
    std::string body = Trim(pending_value);
    if (body.empty() || body.front() != '[' || body.back() != ']')
      return fail("malformed array for key '" + pending_key + "'");
    body = body.substr(1, body.size() - 2);
    std::vector<std::string> values;
    std::string item;
    bool in_string = false;
    for (size_t i = 0; i <= body.size(); ++i) {
      char c = i < body.size() ? body[i] : ',';
      if (c == '"' && (i == 0 || body[i - 1] != '\\')) in_string = !in_string;
      if (c == ',' && !in_string) {
        std::string t = Trim(item);
        if (!t.empty()) {
          std::string scalar;
          if (!ParseScalar(t, &scalar, error)) return false;
          values.push_back(scalar);
        }
        item.clear();
      } else {
        item.push_back(c);
      }
    }
    sections_[section][pending_key] = values;
    in_array = false;
    return true;
  };

  while (std::getline(in, line)) {
    ++lineno;
    if (in_array) {
      pending_value += " " + StripComment(line);
      if (Trim(StripComment(line)).find(']') != std::string::npos) {
        if (!commit_array()) return false;
      }
      continue;
    }
    std::string t = Trim(StripComment(line));
    if (t.empty()) continue;
    if (t.front() == '[') {
      if (t.back() != ']') return fail("malformed section header: " + t);
      section = Trim(t.substr(1, t.size() - 2));
      if (section.empty()) return fail("empty section name");
      sections_[section];  // record even if empty
      continue;
    }
    size_t eq = t.find('=');
    if (eq == std::string::npos) return fail("expected key = value: " + t);
    std::string key = Trim(t.substr(0, eq));
    std::string value = Trim(t.substr(eq + 1));
    if (key.empty()) return fail("empty key");
    if (!value.empty() && value.front() == '[') {
      pending_key = key;
      pending_value = value;
      if (value.find(']') != std::string::npos) {
        if (!commit_array()) return false;
      } else {
        in_array = true;
      }
      continue;
    }
    std::string scalar;
    if (!ParseScalar(value, &scalar, error)) return fail(*error);
    sections_[section][key] = {scalar};
  }
  if (in_array) return fail("unterminated array for key '" + pending_key + "'");
  return true;
}

bool Config::LoadFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open config file: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return Parse(buf.str(), error);
}

const std::vector<std::string>& Config::GetList(const std::string& section,
                                                const std::string& key) const {
  static const std::vector<std::string> kEmpty;
  auto sit = sections_.find(section);
  if (sit == sections_.end()) return kEmpty;
  auto kit = sit->second.find(key);
  if (kit == sit->second.end()) return kEmpty;
  return kit->second;
}

std::string Config::GetString(const std::string& section,
                              const std::string& key,
                              const std::string& fallback) const {
  const std::vector<std::string>& v = GetList(section, key);
  return v.empty() ? fallback : v.front();
}

bool Config::Has(const std::string& section, const std::string& key) const {
  auto sit = sections_.find(section);
  return sit != sections_.end() && sit->second.count(key) > 0;
}

}  // namespace sclint

#pragma once

#include <map>
#include <string>
#include <vector>

/// \file config.h
/// `.sclint.toml` — the data side of the rule registry.
///
/// sc_lint reads a small TOML subset (sections, string/bool/int scalars,
/// arrays of strings; `#` comments). That covers everything the linter is
/// configured with and keeps the tool dependency-free. Unknown sections
/// and keys are preserved so forward-compatible configs do not error.

namespace sclint {

/// Parsed configuration. Sections map to key -> list-of-values; scalar
/// keys are single-element lists.
class Config {
 public:
  /// Parses TOML text. On a syntax error returns false and sets `error`.
  bool Parse(const std::string& text, std::string* error);

  /// Loads and parses a file. A missing file is an error.
  bool LoadFile(const std::string& path, std::string* error);

  /// All values of section.key, empty if absent.
  const std::vector<std::string>& GetList(const std::string& section,
                                          const std::string& key) const;

  /// First value of section.key, or `fallback` if absent.
  std::string GetString(const std::string& section, const std::string& key,
                        const std::string& fallback) const;

  bool Has(const std::string& section, const std::string& key) const;

 private:
  std::map<std::string, std::map<std::string, std::vector<std::string>>>
      sections_;
};

}  // namespace sclint

#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file lexer.h
/// A C++-aware tokenizer for sc_lint.
///
/// sc_lint deliberately does not parse C++ — the project invariants it
/// enforces (banned identifiers, discarded statuses, header hygiene) are
/// all expressible over a token stream, and a tokenizer is cheap enough to
/// run over the whole tree on every build. What the lexer MUST get right
/// is classification: a banned token inside a string literal or a comment
/// is not a violation, so comments, string/char literals (including raw
/// strings) and preprocessor directives are lexed as single opaque tokens
/// and kept out of the code-token stream that rules match against.

namespace sclint {

enum class TokenKind {
  kIdentifier,   // foo, std, operator words
  kNumber,       // 123, 0xff, 1'000'000, 1.5e-3
  kString,       // "..." including raw strings and prefixes (u8"", L"")
  kCharLiteral,  // 'x', '\n'
  kPunct,        // one token per operator; `::` and `->` are fused
  kComment,      // // ... or /* ... */ (one token per comment)
  kDirective,    // a whole preprocessor logical line, continuations fused
  kAttribute,    // a whole [[...]] attribute specifier, one opaque token
};

struct Token {
  TokenKind kind;
  /// View into the file content passed to Lex (valid while it lives).
  std::string_view text;
  /// 1-based position of the token's first character.
  int line = 0;
  int col = 0;
};

/// Tokenizes `content`. Never fails: unrecognized bytes become single-char
/// punctuation, an unterminated literal extends to end of file.
std::vector<Token> Lex(std::string_view content);

/// True for tokens rules should match against (identifiers, numbers,
/// punctuation) as opposed to opaque ones (comments, literals, directives,
/// attribute specifiers — `[[nodiscard]]` must not leak `nodiscard` into
/// the identifier stream the symbol index and rules are built from).
inline bool IsCodeToken(const Token& t) {
  return t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kNumber ||
         t.kind == TokenKind::kPunct;
}

}  // namespace sclint

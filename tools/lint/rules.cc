#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace sclint {
namespace {

bool TextIs(const Token& t, std::string_view s) { return t.text == s; }

/// code[i].text == s, with bounds check.
bool At(const std::vector<Token>& code, size_t i, std::string_view s) {
  return i < code.size() && code[i].text == s;
}

bool IsIdent(const std::vector<Token>& code, size_t i) {
  return i < code.size() && code[i].kind == TokenKind::kIdentifier;
}

void Emit(std::vector<Finding>* out, const FileUnit& unit, const Token& tok,
          std::string rule, std::string message) {
  Finding f;
  f.path = unit.path;
  f.line = tok.line;
  f.col = tok.col;
  f.rule = std::move(rule);
  f.message = std::move(message);
  out->push_back(std::move(f));
}

/// Index of the matching close paren/brace/bracket for the opener at `i`,
/// or code.size() when unbalanced.
size_t MatchForward(const std::vector<Token>& code, size_t i) {
  std::string_view open = code[i].text;
  std::string_view close = open == "(" ? ")" : open == "{" ? "}" : "]";
  int depth = 0;
  for (size_t j = i; j < code.size(); ++j) {
    if (code[j].text == open) ++depth;
    if (code[j].text == close && --depth == 0) return j;
  }
  return code.size();
}

/// Index of the matching opener for the closer at `i`, or npos-like 0 with
/// `ok=false` when unbalanced.
bool MatchBackward(const std::vector<Token>& code, size_t i, size_t* opener) {
  std::string_view close = code[i].text;
  std::string_view open = close == ")" ? "(" : close == "}" ? "{" : "[";
  int depth = 0;
  for (size_t j = i + 1; j-- > 0;) {
    if (code[j].text == close) ++depth;
    if (code[j].text == open && --depth == 0) {
      *opener = j;
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

void CheckBannedRand(const FileUnit& unit, const RuleContext&,
                     std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    bool banned_always = t == "srand" || t == "rand_r" || t == "drand48" ||
                         t == "lrand48" || t == "mrand48";
    bool banned_called =
        t == "rand" && (At(code, i + 1, "(") || (i > 0 && At(code, i - 1, "::")));
    if (banned_always || banned_called) {
      Emit(out, unit, code[i], "sc-banned-rand",
           "'" + std::string(t) +
               "' is banned: use smartcrawl::Rng with an explicit seed "
               "(util/random.h) so runs are reproducible");
    }
  }
}

void CheckBannedTime(const FileUnit& unit, const RuleContext&,
                     std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (!TextIs(code[i], "time") ||
        code[i].kind != TokenKind::kIdentifier)
      continue;
    if (!At(code, i + 1, "(")) continue;
    std::string_view arg = code[i + 2].text;
    if ((arg == "nullptr" || arg == "NULL" || arg == "0") &&
        At(code, i + 3, ")")) {
      Emit(out, unit, code[i], "sc-banned-time",
           "'time(" + std::string(arg) +
               ")' reads the wall clock: thread a seed or a "
               "net::SimulatedClock through instead");
    }
  }
}

void CheckRandomDevice(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  for (const Token& t : unit.code) {
    if (t.kind == TokenKind::kIdentifier && t.text == "random_device") {
      Emit(out, unit, t, "sc-random-device",
           "std::random_device is nondeterministic: derive seeds from the "
           "experiment seed (util/random.h) instead");
    }
  }
}

void CheckUnseededEngine(const FileUnit& unit, const RuleContext&,
                         std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t == "default_random_engine") {
      Emit(out, unit, code[i], "sc-unseeded-engine",
           "std::default_random_engine has an implementation-defined "
           "default: use smartcrawl::Rng (util/random.h)");
      continue;
    }
    if (t != "mt19937" && t != "mt19937_64" && t != "minstd_rand" &&
        t != "minstd_rand0" && t != "knuth_b")
      continue;
    // Unseeded spellings: `mt19937{}` / `mt19937()` temporaries,
    // `mt19937 g;` and `mt19937 g{};` default-constructed variables.
    bool unseeded =
        (At(code, i + 1, "{") && At(code, i + 2, "}")) ||
        (At(code, i + 1, "(") && At(code, i + 2, ")")) ||
        (IsIdent(code, i + 1) &&
         (At(code, i + 2, ";") ||
          (At(code, i + 2, "{") && At(code, i + 3, "}"))));
    if (unseeded) {
      Emit(out, unit, code[i], "sc-unseeded-engine",
           "unseeded std::" + std::string(t) +
               ": every generator must take an explicit seed "
               "(prefer smartcrawl::Rng, util/random.h)");
    }
  }
}

void CheckWallClock(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t == "gettimeofday" || t == "clock_gettime") {
      Emit(out, unit, code[i], "sc-wall-clock",
           "'" + std::string(t) +
               "' reads real time: use net::SimulatedClock (src/net/clock.h)");
      continue;
    }
    if (t != "system_clock" && t != "steady_clock" &&
        t != "high_resolution_clock")
      continue;
    if (At(code, i + 1, "::") && At(code, i + 2, "now")) {
      Emit(out, unit, code[i], "sc-wall-clock",
           "std::chrono::" + std::string(t) +
               "::now() outside the clock shim breaks deterministic "
               "replay: use net::SimulatedClock (src/net/clock.h)");
    }
  }
}

void CheckRealSleep(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    bool banned = t == "sleep_for" || t == "sleep_until" || t == "usleep" ||
                  t == "nanosleep" ||
                  (t == "sleep" && At(code, i + 1, "("));
    if (banned) {
      Emit(out, unit, code[i], "sc-real-sleep",
           "real sleeps are banned (tests covering minutes of simulated "
           "traffic must run in microseconds): advance a "
           "net::SimulatedClock instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Status-discipline rules
// ---------------------------------------------------------------------------

/// Walks left from the first token of a qualified call chain
/// (`ns::obj.field->Call`) to the token index where the chain begins.
size_t ChainStart(const std::vector<Token>& code, size_t i) {
  while (i > 0) {
    std::string_view prev = code[i - 1].text;
    if (prev == "::" || prev == "." || prev == "->") {
      if (i < 2) return i - 1;  // leading `::name` at start of file
      std::string_view before = code[i - 2].text;
      if (code[i - 2].kind == TokenKind::kIdentifier) {
        i -= 2;
        continue;
      }
      if (before == ")" || before == "]") {
        size_t opener = 0;
        if (!MatchBackward(code, i - 2, &opener)) return i - 1;
        // `foo(...)Y.Call` — continue from the token that owns the group.
        if (opener == 0) return opener;
        i = opener;
        continue;
      }
      return i - 1;  // global-scope `::name`
    }
    return i;
  }
  return i;
}

void EmitDiscard(const FileUnit& unit, const Token& call,
                 std::vector<Finding>* out) {
  Emit(out, unit, call, "sc-discarded-status",
       "result of '" + std::string(call.text) +
           "' (Status/Result) is discarded: check it, propagate it with "
           "SC_RETURN_NOT_OK, or discard explicitly with (void)");
}

void CheckDiscardedStatus(const FileUnit& unit, const RuleContext& ctx,
                          std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (ctx.status_functions.count(std::string(code[i].text)) == 0) continue;
    if (!At(code, i + 1, "(")) continue;
    size_t close = MatchForward(code, i + 1);
    if (!At(code, close + 1, ";")) continue;  // value is consumed

    size_t start = ChainStart(code, i);
    if (start == 0) {
      EmitDiscard(unit, code[i], out);
      continue;
    }
    std::string_view before = code[start - 1].text;
    if (before == ";" || before == "{" || before == "}" || before == ":" ||
        before == "else" || before == "do") {
      EmitDiscard(unit, code[i], out);
      continue;
    }
    if (before == ")") {
      // Either `(void)Call();` (an intentional discard — allowed), or the
      // close of an `if (...)`/loop head, making the call the whole body.
      size_t opener = 0;
      if (!MatchBackward(code, start - 1, &opener)) continue;
      bool void_cast = start - 1 == opener + 2 && At(code, opener + 1, "void");
      if (void_cast) continue;
      if (opener > 0) {
        std::string_view head = code[opener - 1].text;
        if (head == "if" || head == "while" || head == "for" ||
            head == "switch") {
          EmitDiscard(unit, code[i], out);
        }
      }
    }
  }
}

void CheckTodoOwner(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    for (size_t pos = 0; pos < text.size(); ++pos) {
      size_t todo = text.find("TODO", pos);
      size_t fixme = text.find("FIXME", pos);
      size_t hit = std::min(todo, fixme);
      if (hit == std::string_view::npos) break;
      size_t tag_len = hit == todo ? 4 : 5;
      pos = hit + tag_len;
      // Word boundaries: "TODOs" in prose or "MYTODO" are not markers.
      auto word_char = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
      };
      if (hit > 0 && word_char(text[hit - 1])) continue;
      if (pos < text.size() && word_char(text[pos])) continue;
      // Owner tag: TODO(name) with a non-empty name.
      bool owned = pos < text.size() && text[pos] == '(' &&
                   text.find(')', pos) != std::string_view::npos &&
                   text.find(')', pos) > pos + 1;
      if (owned) continue;
      // Position of the tag inside a possibly multi-line comment.
      int line = t.line;
      int col = t.col;
      for (size_t k = 0; k < hit; ++k) {
        if (text[k] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      Finding f;
      f.path = unit.path;
      f.line = line;
      f.col = col;
      f.rule = "sc-todo-owner";
      f.message = std::string(text.substr(hit, tag_len)) +
                  " without an owner: write " +
                  std::string(text.substr(hit, tag_len)) +
                  "(name): so stale markers are attributable";
      out->push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Header-hygiene rules
// ---------------------------------------------------------------------------

/// First word of a directive after '#', e.g. "include", "pragma".
std::string_view DirectiveKeyword(std::string_view text) {
  size_t i = 1;  // skip '#'
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t'))
    ++i;
  size_t j = i;
  while (j < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
          text[j] == '_'))
    ++j;
  return text.substr(i, j - i);
}

void CheckIncludeGuard(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  if (!unit.is_header) return;
  std::vector<const Token*> directives;
  for (const Token& t : unit.tokens)
    if (t.kind == TokenKind::kDirective) directives.push_back(&t);
  for (const Token* d : directives) {
    std::string_view kw = DirectiveKeyword(d->text);
    if (kw == "pragma" &&
        d->text.find("once") != std::string_view::npos)
      return;
  }
  // Classic guard: first directive #ifndef, second #define.
  if (directives.size() >= 2 &&
      DirectiveKeyword(directives[0]->text) == "ifndef" &&
      DirectiveKeyword(directives[1]->text) == "define")
    return;
  Finding f;
  f.path = unit.path;
  f.line = 1;
  f.col = 1;
  f.rule = "sc-include-guard";
  f.message =
      "header has neither '#pragma once' nor an include guard: double "
      "inclusion is an ODR trap";
  out->push_back(std::move(f));
}

void CheckUsingNamespaceHeader(const FileUnit& unit, const RuleContext&,
                               std::vector<Finding>* out) {
  if (!unit.is_header) return;
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (TextIs(code[i], "using") && TextIs(code[i + 1], "namespace")) {
      Emit(out, unit, code[i], "sc-using-namespace-header",
           "'using namespace' in a header leaks into every includer: "
           "qualify names or use a namespace alias");
    }
  }
}

void CheckDirectInclude(const FileUnit& unit, const RuleContext& ctx,
                        std::vector<Finding>* out) {
  const std::vector<std::string>& rules =
      ctx.config->GetList("rule.sc-direct-include", "require");
  for (const std::string& spec : rules) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos) continue;
    std::string token = spec.substr(0, eq);
    // Alternatives separated by '|': any one satisfies the requirement.
    std::vector<std::string> headers;
    std::string rest = spec.substr(eq + 1);
    size_t from = 0;
    while (true) {
      size_t bar = rest.find('|', from);
      headers.push_back(rest.substr(from, bar - from));
      if (bar == std::string::npos) break;
      from = bar + 1;
    }
    bool satisfied = false;
    for (const std::string& h : headers) {
      for (const std::string& inc : unit.includes)
        if (inc == h) satisfied = true;
      if (unit.path == h) satisfied = true;  // the defining header itself
    }
    if (satisfied) continue;
    for (const Token& t : unit.code) {
      if (t.kind == TokenKind::kIdentifier && t.text == token) {
        Emit(out, unit, t, "sc-direct-include",
             "'" + token + "' requires a direct #include of " + headers[0] +
                 " (transitive includes break when intermediates change)");
        break;  // one finding per file per token
      }
    }
  }
}

// ---------------------------------------------------------------------------
// API-contract rules
// ---------------------------------------------------------------------------

/// CrawlPlan is the immutable half of the plan/session split: after
/// Build() nothing may mutate it (core/crawl_plan.h). Two escapes are
/// rejected: (a) a non-const, non-static member function creeping into a
/// `class CrawlPlan { ... }` body (constructors, deleted/defaulted
/// members, friends and data members are fine — the private builder is
/// the one sanctioned writer), and (b) a const_cast whose target type
/// names CrawlPlan, anywhere.
void CheckPlanMutation(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    // (b) const_cast<... CrawlPlan ...>
    if (TextIs(code[i], "const_cast") && At(code, i + 1, "<")) {
      int depth = 0;
      for (size_t j = i + 1; j < code.size(); ++j) {
        if (code[j].text == "<") ++depth;
        if (code[j].text == ">" && --depth == 0) break;
        if (TextIs(code[j], "CrawlPlan")) {
          Emit(out, unit, code[i], "sc-plan-mutation",
               "const_cast to a CrawlPlan type: the plan is frozen after "
               "Build() — keep mutable crawl state on the CrawlSession");
          break;
        }
      }
      continue;
    }
    // (a) class CrawlPlan { ...members... }
    if (!TextIs(code[i], "class") || !At(code, i + 1, "CrawlPlan")) continue;
    size_t open = i + 2;
    while (open < code.size() && !TextIs(code[open], "{") &&
           !TextIs(code[open], ";"))
      ++open;
    if (open >= code.size() || TextIs(code[open], ";")) continue;
    size_t close = MatchForward(code, open);
    size_t j = open + 1;
    while (j < close) {
      std::string_view s = code[j].text;
      if ((s == "public" || s == "private" || s == "protected") &&
          At(code, j + 1, ":")) {
        j += 2;
        continue;
      }
      // One member declaration: find its declarator '(' (if any), skipping
      // declarations that cannot be mutating member functions.
      size_t k = j;
      size_t paren = close;
      bool exempt = false;   // static/friend/using/typedef/template
      bool init_eq = false;  // '=' before any '(' -> data-member initializer
      while (k < close) {
        std::string_view t = code[k].text;
        if (t == "static" || t == "friend" || t == "using" ||
            t == "typedef" || t == "template")
          exempt = true;
        if (t == "=" && (k == j || !TextIs(code[k - 1], "operator")))
          init_eq = true;
        if (t == "(") {
          paren = k;
          break;
        }
        if (t == ";" || t == "{") break;
        ++k;
      }
      if (paren == close || init_eq) {
        // Data member, friend or alias: skip to the end of the declaration.
        while (k < close && !TextIs(code[k], ";")) {
          if (TextIs(code[k], "{")) k = MatchForward(code, k);
          ++k;
        }
        j = k + 1;
        continue;
      }
      size_t close_paren = MatchForward(code, paren);
      bool is_const = false, is_defaulted = false;
      size_t term = close_paren + 1;
      while (term < close && !TextIs(code[term], ";") &&
             !TextIs(code[term], "{")) {
        if (TextIs(code[term], "const")) is_const = true;
        if (TextIs(code[term], "delete") || TextIs(code[term], "default"))
          is_defaulted = true;
        ++term;
      }
      const Token* name = nullptr;
      bool is_ctor = false;
      if (paren > 0 && code[paren - 1].kind == TokenKind::kIdentifier) {
        name = &code[paren - 1];
        is_ctor = TextIs(code[paren - 1], "CrawlPlan") ||
                  (paren >= 2 && TextIs(code[paren - 2], "~"));
      } else {
        for (size_t b = j; b < paren; ++b) {
          if (TextIs(code[b], "operator")) {
            name = &code[b];
            break;
          }
        }
      }
      if (name != nullptr && !exempt && !is_ctor && !is_const &&
          !is_defaulted) {
        Emit(out, unit, *name, "sc-plan-mutation",
             "non-const member '" + std::string(name->text) +
                 "' on CrawlPlan: the plan is frozen after Build() — make "
                 "it const or move the state to CrawlSession");
      }
      j = term;
      if (j < close && TextIs(code[j], "{")) j = MatchForward(code, j);
      ++j;
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// sc-raw-reinterpret
// ---------------------------------------------------------------------------

/// Bans `reinterpret_cast` outside the allowlisted snapshot reader path.
/// Serving typed spans straight out of an mmap'ed file needs exactly one
/// byte-punning cast (SnapshotReader::Typed, which validates size and
/// alignment first); everywhere else the codebase uses memcpy,
/// std::as_bytes, std::bit_cast or static_cast from void*, all of which
/// the compiler can check. Keeping the cast count at one makes the
/// unsafe surface auditable. Allowlist files via
/// `[rule.sc-raw-reinterpret] allow = [...]` in .sclint.toml.
void CheckRawReinterpret(const FileUnit& unit, const RuleContext&,
                         std::vector<Finding>* out) {
  for (const Token& t : unit.code) {
    if (t.kind == TokenKind::kIdentifier && t.text == "reinterpret_cast") {
      Emit(out, unit, t, "sc-raw-reinterpret",
           "reinterpret_cast is confined to the snapshot reader's audited "
           "typed-span accessor (src/snapshot/reader.h): use memcpy, "
           "std::bit_cast, std::as_bytes, or static_cast from void* — or "
           "allowlist the file in .sclint.toml if it truly must pun bytes");
    }
  }
}

}  // namespace

const std::vector<RuleDef>& AllRules() {
  static const std::vector<RuleDef> kRules = {
      {"sc-banned-rand", Severity::kError,
       "bans std::rand/srand/drand48-family ambient randomness",
       CheckBannedRand},
      {"sc-banned-time", Severity::kError,
       "bans time(nullptr)-style wall-clock seeds", CheckBannedTime},
      {"sc-random-device", Severity::kError,
       "bans std::random_device outside the seed utilities",
       CheckRandomDevice},
      {"sc-unseeded-engine", Severity::kError,
       "bans unseeded std engines and default_random_engine",
       CheckUnseededEngine},
      {"sc-wall-clock", Severity::kError,
       "bans chrono ::now() outside the clock shim", CheckWallClock},
      {"sc-real-sleep", Severity::kError,
       "bans real sleeps; simulated time only", CheckRealSleep},
      {"sc-discarded-status", Severity::kError,
       "flags Status/Result return values dropped on the floor",
       CheckDiscardedStatus},
      {"sc-todo-owner", Severity::kWarning,
       "requires TODO(owner)/FIXME(owner) attribution", CheckTodoOwner},
      {"sc-include-guard", Severity::kError,
       "headers need #pragma once or an include guard", CheckIncludeGuard},
      {"sc-using-namespace-header", Severity::kError,
       "bans using-directives in headers", CheckUsingNamespaceHeader},
      {"sc-direct-include", Severity::kError,
       "configured tokens must be backed by a direct include",
       CheckDirectInclude},
      {"sc-plan-mutation", Severity::kError,
       "CrawlPlan is immutable: no non-const members, no const_cast",
       CheckPlanMutation},
      {"sc-raw-reinterpret", Severity::kError,
       "bans reinterpret_cast outside the snapshot reader allowlist",
       CheckRawReinterpret},
  };
  return kRules;
}

FileUnit MakeFileUnit(std::string path, std::string content) {
  FileUnit unit;
  unit.path = std::move(path);
  unit.content = std::move(content);
  unit.tokens = Lex(unit.content);
  for (const Token& t : unit.tokens)
    if (IsCodeToken(t)) unit.code.push_back(t);
  size_t dot = unit.path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : unit.path.substr(dot);
  unit.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kDirective) continue;
    if (DirectiveKeyword(t.text) != "include") continue;
    std::string_view text = t.text;
    size_t open = text.find_first_of("\"<");
    if (open == std::string_view::npos) continue;
    char close = text[open] == '"' ? '"' : '>';
    size_t end = text.find(close, open + 1);
    if (end == std::string_view::npos) continue;
    unit.includes.emplace_back(text.substr(open + 1, end - open - 1));
  }
  return unit;
}

void HarvestStatusFunctions(const FileUnit& unit,
                            std::set<std::string>* out) {
  const std::vector<Token>& code = unit.code;
  auto is_decl_context = [&](size_t type_idx) {
    if (type_idx == 0) return true;
    const Token& prev = code[type_idx - 1];
    std::string_view p = prev.text;
    if (p == ";" || p == "{" || p == "}" || p == ":" || p == "]" ||
        p == ">" || p == "::")
      return true;
    if (prev.kind == TokenKind::kIdentifier) {
      return p == "static" || p == "inline" || p == "virtual" ||
             p == "explicit" || p == "constexpr" || p == "friend" ||
             p == "extern" || p == "mutable" || p == "typename" ||
             p == "public" || p == "private" || p == "protected";
    }
    return false;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t != "Status" && t != "Result") continue;
    if (!is_decl_context(i)) continue;
    size_t j = i + 1;
    if (t == "Result") {
      if (!At(code, j, "<")) continue;
      int depth = 0;
      size_t limit = std::min(code.size(), j + 96);
      for (; j < limit; ++j) {
        if (code[j].text == "<") ++depth;
        if (code[j].text == ">" && --depth == 0) break;
      }
      if (j >= limit) continue;
      ++j;  // past '>'
    }
    // Qualified declarator: name (:: name)* followed by '('.
    if (!IsIdent(code, j)) continue;
    size_t name_idx = j;
    while (At(code, name_idx + 1, "::") && IsIdent(code, name_idx + 2))
      name_idx += 2;
    if (!At(code, name_idx + 1, "(")) continue;
    out->insert(std::string(code[name_idx].text));
  }
}

}  // namespace sclint

#include "lint/rules.h"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <map>

#include "lint/model.h"
#include "lint/token_util.h"

namespace sclint {
namespace {

// Thin aliases for the shared matchers (token_util.h) under the names the
// rule bodies here have always used. MatchForward/MatchBackward/SkipAngles
// are used under their shared names directly.
bool TextIs(const Token& t, std::string_view s) { return TokenIs(t, s); }

bool At(const std::vector<Token>& code, size_t i, std::string_view s) {
  return TokenAt(code, i, s);
}

bool IsIdent(const std::vector<Token>& code, size_t i) {
  return TokenIsIdent(code, i);
}

void EmitAt(std::vector<Finding>* out, const FileUnit& unit, int line,
            int col, std::string rule, std::string message) {
  Finding f;
  f.path = unit.path;
  f.line = line;
  f.col = col;
  f.rule = std::move(rule);
  f.message = std::move(message);
  out->push_back(std::move(f));
}

void Emit(std::vector<Finding>* out, const FileUnit& unit, const Token& tok,
          std::string rule, std::string message) {
  EmitAt(out, unit, tok.line, tok.col, std::move(rule), std::move(message));
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

void CheckBannedRand(const FileUnit& unit, const RuleContext&,
                     std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    bool banned_always = t == "srand" || t == "rand_r" || t == "drand48" ||
                         t == "lrand48" || t == "mrand48";
    bool banned_called =
        t == "rand" && (At(code, i + 1, "(") || (i > 0 && At(code, i - 1, "::")));
    if (banned_always || banned_called) {
      Emit(out, unit, code[i], "sc-banned-rand",
           "'" + std::string(t) +
               "' is banned: use smartcrawl::Rng with an explicit seed "
               "(util/random.h) so runs are reproducible");
    }
  }
}

void CheckBannedTime(const FileUnit& unit, const RuleContext&,
                     std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i + 3 < code.size(); ++i) {
    if (!TextIs(code[i], "time") ||
        code[i].kind != TokenKind::kIdentifier)
      continue;
    if (!At(code, i + 1, "(")) continue;
    std::string_view arg = code[i + 2].text;
    if ((arg == "nullptr" || arg == "NULL" || arg == "0") &&
        At(code, i + 3, ")")) {
      Emit(out, unit, code[i], "sc-banned-time",
           "'time(" + std::string(arg) +
               ")' reads the wall clock: thread a seed or a "
               "net::SimulatedClock through instead");
    }
  }
}

void CheckRandomDevice(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  for (const Token& t : unit.code) {
    if (t.kind == TokenKind::kIdentifier && t.text == "random_device") {
      Emit(out, unit, t, "sc-random-device",
           "std::random_device is nondeterministic: derive seeds from the "
           "experiment seed (util/random.h) instead");
    }
  }
}

void CheckUnseededEngine(const FileUnit& unit, const RuleContext&,
                         std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t == "default_random_engine") {
      Emit(out, unit, code[i], "sc-unseeded-engine",
           "std::default_random_engine has an implementation-defined "
           "default: use smartcrawl::Rng (util/random.h)");
      continue;
    }
    if (t != "mt19937" && t != "mt19937_64" && t != "minstd_rand" &&
        t != "minstd_rand0" && t != "knuth_b")
      continue;
    // Unseeded spellings: `mt19937{}` / `mt19937()` temporaries,
    // `mt19937 g;` and `mt19937 g{};` default-constructed variables.
    bool unseeded =
        (At(code, i + 1, "{") && At(code, i + 2, "}")) ||
        (At(code, i + 1, "(") && At(code, i + 2, ")")) ||
        (IsIdent(code, i + 1) &&
         (At(code, i + 2, ";") ||
          (At(code, i + 2, "{") && At(code, i + 3, "}"))));
    if (unseeded) {
      Emit(out, unit, code[i], "sc-unseeded-engine",
           "unseeded std::" + std::string(t) +
               ": every generator must take an explicit seed "
               "(prefer smartcrawl::Rng, util/random.h)");
    }
  }
}

void CheckWallClock(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t == "gettimeofday" || t == "clock_gettime") {
      Emit(out, unit, code[i], "sc-wall-clock",
           "'" + std::string(t) +
               "' reads real time: use net::SimulatedClock (src/net/clock.h)");
      continue;
    }
    if (t != "system_clock" && t != "steady_clock" &&
        t != "high_resolution_clock")
      continue;
    if (At(code, i + 1, "::") && At(code, i + 2, "now")) {
      Emit(out, unit, code[i], "sc-wall-clock",
           "std::chrono::" + std::string(t) +
               "::now() outside the clock shim breaks deterministic "
               "replay: use net::SimulatedClock (src/net/clock.h)");
    }
  }
}

void CheckRealSleep(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    bool banned = t == "sleep_for" || t == "sleep_until" || t == "usleep" ||
                  t == "nanosleep" ||
                  (t == "sleep" && At(code, i + 1, "("));
    if (banned) {
      Emit(out, unit, code[i], "sc-real-sleep",
           "real sleeps are banned (tests covering minutes of simulated "
           "traffic must run in microseconds): advance a "
           "net::SimulatedClock instead");
    }
  }
}

// ---------------------------------------------------------------------------
// Status-discipline rules
// ---------------------------------------------------------------------------

/// Walks left from the first token of a qualified call chain
/// (`ns::obj.field->Call`) to the token index where the chain begins.
size_t ChainStart(const std::vector<Token>& code, size_t i) {
  while (i > 0) {
    std::string_view prev = code[i - 1].text;
    if (prev == "::" || prev == "." || prev == "->") {
      if (i < 2) return i - 1;  // leading `::name` at start of file
      std::string_view before = code[i - 2].text;
      if (code[i - 2].kind == TokenKind::kIdentifier) {
        i -= 2;
        continue;
      }
      if (before == ")" || before == "]") {
        size_t opener = 0;
        if (!MatchBackward(code, i - 2, &opener)) return i - 1;
        // `foo(...)Y.Call` — continue from the token that owns the group.
        if (opener == 0) return opener;
        i = opener;
        continue;
      }
      return i - 1;  // global-scope `::name`
    }
    return i;
  }
  return i;
}

void EmitDiscard(const FileUnit& unit, const Token& call,
                 std::vector<Finding>* out) {
  Emit(out, unit, call, "sc-discarded-status",
       "result of '" + std::string(call.text) +
           "' (Status/Result) is discarded: check it, propagate it with "
           "SC_RETURN_NOT_OK, or discard explicitly with (void)");
}

void CheckDiscardedStatus(const FileUnit& unit, const RuleContext& ctx,
                          std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    if (ctx.status_functions.count(std::string(code[i].text)) == 0) continue;
    if (!At(code, i + 1, "(")) continue;
    size_t close = MatchForward(code, i + 1);
    if (!At(code, close + 1, ";")) continue;  // value is consumed

    size_t start = ChainStart(code, i);
    if (start == 0) {
      EmitDiscard(unit, code[i], out);
      continue;
    }
    std::string_view before = code[start - 1].text;
    if (before == ";" || before == "{" || before == "}" || before == ":" ||
        before == "else" || before == "do") {
      EmitDiscard(unit, code[i], out);
      continue;
    }
    if (before == ")") {
      // Either `(void)Call();` (an intentional discard — allowed), or the
      // close of an `if (...)`/loop head, making the call the whole body.
      size_t opener = 0;
      if (!MatchBackward(code, start - 1, &opener)) continue;
      bool void_cast = start - 1 == opener + 2 && At(code, opener + 1, "void");
      if (void_cast) continue;
      if (opener > 0) {
        std::string_view head = code[opener - 1].text;
        if (head == "if" || head == "while" || head == "for" ||
            head == "switch") {
          EmitDiscard(unit, code[i], out);
        }
      }
    }
  }
}

void CheckTodoOwner(const FileUnit& unit, const RuleContext&,
                    std::vector<Finding>* out) {
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kComment) continue;
    std::string_view text = t.text;
    for (size_t pos = 0; pos < text.size(); ++pos) {
      size_t todo = text.find("TODO", pos);
      size_t fixme = text.find("FIXME", pos);
      size_t hit = std::min(todo, fixme);
      if (hit == std::string_view::npos) break;
      size_t tag_len = hit == todo ? 4 : 5;
      pos = hit + tag_len;
      // Word boundaries: "TODOs" in prose or "MYTODO" are not markers.
      auto word_char = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
      };
      if (hit > 0 && word_char(text[hit - 1])) continue;
      if (pos < text.size() && word_char(text[pos])) continue;
      // Owner tag: TODO(name) with a non-empty name.
      bool owned = pos < text.size() && text[pos] == '(' &&
                   text.find(')', pos) != std::string_view::npos &&
                   text.find(')', pos) > pos + 1;
      if (owned) continue;
      // Position of the tag inside a possibly multi-line comment.
      int line = t.line;
      int col = t.col;
      for (size_t k = 0; k < hit; ++k) {
        if (text[k] == '\n') {
          ++line;
          col = 1;
        } else {
          ++col;
        }
      }
      Finding f;
      f.path = unit.path;
      f.line = line;
      f.col = col;
      f.rule = "sc-todo-owner";
      f.message = std::string(text.substr(hit, tag_len)) +
                  " without an owner: write " +
                  std::string(text.substr(hit, tag_len)) +
                  "(name): so stale markers are attributable";
      out->push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Header-hygiene rules
// ---------------------------------------------------------------------------

/// First word of a directive after '#', e.g. "include", "pragma".
std::string_view DirectiveKeyword(std::string_view text) {
  size_t i = 1;  // skip '#'
  while (i < text.size() &&
         (text[i] == ' ' || text[i] == '\t'))
    ++i;
  size_t j = i;
  while (j < text.size() &&
         (std::isalnum(static_cast<unsigned char>(text[j])) != 0 ||
          text[j] == '_'))
    ++j;
  return text.substr(i, j - i);
}

void CheckIncludeGuard(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  if (!unit.is_header) return;
  std::vector<const Token*> directives;
  for (const Token& t : unit.tokens)
    if (t.kind == TokenKind::kDirective) directives.push_back(&t);
  for (const Token* d : directives) {
    std::string_view kw = DirectiveKeyword(d->text);
    if (kw == "pragma" &&
        d->text.find("once") != std::string_view::npos)
      return;
  }
  // Classic guard: first directive #ifndef, second #define.
  if (directives.size() >= 2 &&
      DirectiveKeyword(directives[0]->text) == "ifndef" &&
      DirectiveKeyword(directives[1]->text) == "define")
    return;
  Finding f;
  f.path = unit.path;
  f.line = 1;
  f.col = 1;
  f.rule = "sc-include-guard";
  f.message =
      "header has neither '#pragma once' nor an include guard: double "
      "inclusion is an ODR trap";
  out->push_back(std::move(f));
}

void CheckUsingNamespaceHeader(const FileUnit& unit, const RuleContext&,
                               std::vector<Finding>* out) {
  if (!unit.is_header) return;
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i + 1 < code.size(); ++i) {
    if (TextIs(code[i], "using") && TextIs(code[i + 1], "namespace")) {
      Emit(out, unit, code[i], "sc-using-namespace-header",
           "'using namespace' in a header leaks into every includer: "
           "qualify names or use a namespace alias");
    }
  }
}

void CheckDirectInclude(const FileUnit& unit, const RuleContext& ctx,
                        std::vector<Finding>* out) {
  const std::vector<std::string>& rules =
      ctx.config->GetList("rule.sc-direct-include", "require");
  for (const std::string& spec : rules) {
    size_t eq = spec.find('=');
    if (eq == std::string::npos) continue;
    std::string token = spec.substr(0, eq);
    // Alternatives separated by '|': any one satisfies the requirement.
    std::vector<std::string> headers;
    std::string rest = spec.substr(eq + 1);
    size_t from = 0;
    while (true) {
      size_t bar = rest.find('|', from);
      headers.push_back(rest.substr(from, bar - from));
      if (bar == std::string::npos) break;
      from = bar + 1;
    }
    bool satisfied = false;
    for (const std::string& h : headers) {
      for (const IncludeDirective& inc : unit.includes)
        if (inc.target == h) satisfied = true;
      if (unit.path == h) satisfied = true;  // the defining header itself
    }
    if (satisfied) continue;
    for (const Token& t : unit.code) {
      if (t.kind == TokenKind::kIdentifier && t.text == token) {
        Emit(out, unit, t, "sc-direct-include",
             "'" + token + "' requires a direct #include of " + headers[0] +
                 " (transitive includes break when intermediates change)");
        break;  // one finding per file per token
      }
    }
  }
}

// ---------------------------------------------------------------------------
// API-contract rules
// ---------------------------------------------------------------------------

/// CrawlPlan is the immutable half of the plan/session split: after
/// Build() nothing may mutate it (core/crawl_plan.h). Two escapes are
/// rejected: (a) a non-const, non-static member function creeping into a
/// `class CrawlPlan { ... }` body (constructors, deleted/defaulted
/// members, friends and data members are fine — the private builder is
/// the one sanctioned writer), and (b) a const_cast whose target type
/// names CrawlPlan, anywhere.
void CheckPlanMutation(const FileUnit& unit, const RuleContext&,
                       std::vector<Finding>* out) {
  const std::vector<Token>& code = unit.code;
  for (size_t i = 0; i < code.size(); ++i) {
    // (b) const_cast<... CrawlPlan ...>
    if (TextIs(code[i], "const_cast") && At(code, i + 1, "<")) {
      int depth = 0;
      for (size_t j = i + 1; j < code.size(); ++j) {
        if (code[j].text == "<") ++depth;
        if (code[j].text == ">" && --depth == 0) break;
        if (TextIs(code[j], "CrawlPlan")) {
          Emit(out, unit, code[i], "sc-plan-mutation",
               "const_cast to a CrawlPlan type: the plan is frozen after "
               "Build() — keep mutable crawl state on the CrawlSession");
          break;
        }
      }
      continue;
    }
    // (a) class CrawlPlan { ...members... }
    if (!TextIs(code[i], "class") || !At(code, i + 1, "CrawlPlan")) continue;
    size_t open = i + 2;
    while (open < code.size() && !TextIs(code[open], "{") &&
           !TextIs(code[open], ";"))
      ++open;
    if (open >= code.size() || TextIs(code[open], ";")) continue;
    size_t close = MatchForward(code, open);
    size_t j = open + 1;
    while (j < close) {
      std::string_view s = code[j].text;
      if ((s == "public" || s == "private" || s == "protected") &&
          At(code, j + 1, ":")) {
        j += 2;
        continue;
      }
      // One member declaration: find its declarator '(' (if any), skipping
      // declarations that cannot be mutating member functions.
      size_t k = j;
      size_t paren = close;
      bool exempt = false;   // static/friend/using/typedef/template
      bool init_eq = false;  // '=' before any '(' -> data-member initializer
      while (k < close) {
        std::string_view t = code[k].text;
        if (t == "static" || t == "friend" || t == "using" ||
            t == "typedef" || t == "template")
          exempt = true;
        if (t == "=" && (k == j || !TextIs(code[k - 1], "operator")))
          init_eq = true;
        if (t == "(") {
          paren = k;
          break;
        }
        if (t == ";" || t == "{") break;
        ++k;
      }
      if (paren == close || init_eq) {
        // Data member, friend or alias: skip to the end of the declaration.
        while (k < close && !TextIs(code[k], ";")) {
          if (TextIs(code[k], "{")) k = MatchForward(code, k);
          ++k;
        }
        j = k + 1;
        continue;
      }
      size_t close_paren = MatchForward(code, paren);
      bool is_const = false, is_defaulted = false;
      size_t term = close_paren + 1;
      while (term < close && !TextIs(code[term], ";") &&
             !TextIs(code[term], "{")) {
        if (TextIs(code[term], "const")) is_const = true;
        if (TextIs(code[term], "delete") || TextIs(code[term], "default"))
          is_defaulted = true;
        ++term;
      }
      const Token* name = nullptr;
      bool is_ctor = false;
      if (paren > 0 && code[paren - 1].kind == TokenKind::kIdentifier) {
        name = &code[paren - 1];
        is_ctor = TextIs(code[paren - 1], "CrawlPlan") ||
                  (paren >= 2 && TextIs(code[paren - 2], "~"));
      } else {
        for (size_t b = j; b < paren; ++b) {
          if (TextIs(code[b], "operator")) {
            name = &code[b];
            break;
          }
        }
      }
      if (name != nullptr && !exempt && !is_ctor && !is_const &&
          !is_defaulted) {
        Emit(out, unit, *name, "sc-plan-mutation",
             "non-const member '" + std::string(name->text) +
                 "' on CrawlPlan: the plan is frozen after Build() — make "
                 "it const or move the state to CrawlSession");
      }
      j = term;
      if (j < close && TextIs(code[j], "{")) j = MatchForward(code, j);
      ++j;
    }
    i = close;
  }
}

// ---------------------------------------------------------------------------
// sc-raw-reinterpret
// ---------------------------------------------------------------------------

/// Bans `reinterpret_cast` outside the allowlisted snapshot reader path.
/// Serving typed spans straight out of an mmap'ed file needs exactly one
/// byte-punning cast (SnapshotReader::Typed, which validates size and
/// alignment first); everywhere else the codebase uses memcpy,
/// std::as_bytes, std::bit_cast or static_cast from void*, all of which
/// the compiler can check. Keeping the cast count at one makes the
/// unsafe surface auditable. Allowlist files via
/// `[rule.sc-raw-reinterpret] allow = [...]` in .sclint.toml.
void CheckRawReinterpret(const FileUnit& unit, const RuleContext&,
                         std::vector<Finding>* out) {
  for (const Token& t : unit.code) {
    if (t.kind == TokenKind::kIdentifier && t.text == "reinterpret_cast") {
      Emit(out, unit, t, "sc-raw-reinterpret",
           "reinterpret_cast is confined to the snapshot reader's audited "
           "typed-span accessor (src/snapshot/reader.h): use memcpy, "
           "std::bit_cast, std::as_bytes, or static_cast from void* — or "
           "allowlist the file in .sclint.toml if it truly must pun bytes");
    }
  }
}

// ---------------------------------------------------------------------------
// Structure rules (cross-TU; need the pass-1 project model)
// ---------------------------------------------------------------------------

/// The layer a repo-relative path belongs to: the directory under src/ or
/// tools/, else the first path segment (covers bench/ and fixture trees
/// whose root is the layer dir itself).
std::string LayerOf(const std::string& path) {
  std::string_view rest = path;
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) return std::string();
  std::string_view first = rest.substr(0, slash);
  if (first == "src" || first == "tools") {
    rest = rest.substr(slash + 1);
    slash = rest.find('/');
    if (slash == std::string_view::npos) return std::string();
    first = rest.substr(0, slash);
  }
  return std::string(first);
}

/// Layer ranks from `[rule.sc-layer-dag] order`, plus `alias` entries of
/// the form "name=layer" mapped onto the aliased layer's rank. Paths in
/// unranked layers (tests/, examples/, fixtures) are simply not checked.
std::map<std::string, size_t> LayerRanks(const Config& config) {
  std::map<std::string, size_t> ranks;
  const std::vector<std::string>& order =
      config.GetList("rule.sc-layer-dag", "order");
  for (size_t i = 0; i < order.size(); ++i) ranks[order[i]] = i;
  for (const std::string& alias :
       config.GetList("rule.sc-layer-dag", "alias")) {
    size_t eq = alias.find('=');
    if (eq == std::string::npos) continue;
    auto it = ranks.find(alias.substr(eq + 1));
    if (it != ranks.end()) ranks[alias.substr(0, eq)] = it->second;
  }
  return ranks;
}

/// Rejects includes that point *up* the configured layer order: a layer
/// may depend only on itself and layers below it. This is the lint-time
/// twin of the link-time dependency order in src/CMakeLists.txt — the
/// linker only catches upward deps that reach undefined symbols; header
/// cycles and type-only upward includes sail through it.
void CheckLayerDag(const FileUnit& unit, const RuleContext& ctx,
                   std::vector<Finding>* out) {
  if (ctx.model == nullptr) return;
  const FileNode* node = ctx.model->Node(unit.path);
  if (node == nullptr) return;
  std::map<std::string, size_t> ranks = LayerRanks(*ctx.config);
  if (ranks.empty()) return;
  auto my = ranks.find(LayerOf(unit.path));
  if (my == ranks.end()) return;
  for (const auto& [idx, target] : node->resolved_includes) {
    auto theirs = ranks.find(LayerOf(target));
    if (theirs == ranks.end() || theirs->second <= my->second) continue;
    const IncludeDirective& d = unit.includes[idx];
    EmitAt(out, unit, d.line, d.col, "sc-layer-dag",
           "#include \"" + d.target + "\" reaches up the layer DAG: '" +
               my->first + "' may depend only on layers at or below it, "
               "but '" + theirs->first +
               "' is above (see [rule.sc-layer-dag] order in .sclint.toml)");
  }
}

/// Rejects cycles in the include graph. Every file in a non-trivial
/// strongly connected component reports each of its includes that stays
/// inside the component, so a cycle is flagged at every edge that sustains
/// it and fixing any one edge clears the whole component.
void CheckIncludeCycle(const FileUnit& unit, const RuleContext& ctx,
                       std::vector<Finding>* out) {
  if (ctx.model == nullptr) return;
  const std::vector<std::string>* cycle = ctx.model->CycleOf(unit.path);
  if (cycle == nullptr) return;
  const FileNode* node = ctx.model->Node(unit.path);
  std::string members;
  for (const std::string& m : *cycle) {
    if (!members.empty()) members += " <-> ";
    members += m;
  }
  for (const auto& [idx, target] : node->resolved_includes) {
    bool in_cycle =
        target == unit.path ||
        std::binary_search(cycle->begin(), cycle->end(), target);
    if (!in_cycle) continue;
    const IncludeDirective& d = unit.includes[idx];
    EmitAt(out, unit, d.line, d.col, "sc-include-cycle",
           "#include \"" + d.target + "\" closes an include cycle (" +
               members +
               "): break it with a forward declaration or by hoisting the "
               "shared types into a lower layer");
  }
}

/// Enforces SC_GUARDED_BY: inside the member functions of an annotated
/// class, a guarded member may be touched only while its mutex is held —
/// lexically via std::lock_guard/unique_lock/scoped_lock in an enclosing
/// scope, or contractually via SC_REQUIRES on the method. The annotations
/// live on the in-class declarations (usually a header); the bodies
/// checked here are usually in the .cc — which is why this rule needs the
/// cross-TU class index and a single-file linter could not do it.
void CheckGuardedBy(const FileUnit& unit, const RuleContext& ctx,
                    std::vector<Finding>* out) {
  if (ctx.model == nullptr) return;
  const std::vector<Token>& code = unit.code;
  std::vector<ClassRegion> regions = FindClassRegions(code);

  for (size_t i = 0; i + 1 < code.size(); ++i) {
    // A function definition: `name ( params ) quals {`.
    if (code[i].kind != TokenKind::kIdentifier || !At(code, i + 1, "("))
      continue;
    std::string_view fn = code[i].text;
    if (fn == "if" || fn == "while" || fn == "for" || fn == "switch" ||
        fn == "catch" || fn == "return" || fn == "sizeof")
      continue;
    // The annotation macros are themselves `IDENT ( ... )` and, when they
    // qualify an inline definition, are directly followed by its `{` —
    // which would read as a phantom function named SC_REQUIRES with no
    // assumed mutexes. The real definition was already handled when the
    // scan passed its actual name.
    if (fn == "SC_REQUIRES" || fn == "SC_EXCLUDES" ||
        fn == "SC_GUARDED_BY" || fn == "SC_NO_THREAD_SAFETY_ANALYSIS")
      continue;
    size_t params_close = MatchForward(code, i + 1);
    if (params_close >= code.size()) continue;
    // Walk the qualifier region after ')' with a strict allowlist; any
    // unexpected token means this was a call or declaration, not a
    // definition with a body, and we skip it (never guess).
    size_t q = params_close + 1;
    bool is_definition = false;
    while (q < code.size()) {
      std::string_view t = code[q].text;
      if (t == "{") {
        is_definition = true;
        break;
      }
      if (t == "const" || t == "noexcept" || t == "override" ||
          t == "final" || t == "&") {
        ++q;
        continue;
      }
      if (t == "SC_REQUIRES" || t == "SC_EXCLUDES" ||
          t == "SC_NO_THREAD_SAFETY_ANALYSIS") {
        ++q;
        if (At(code, q, "(")) {
          q = MatchForward(code, q);
          if (q >= code.size()) break;
          ++q;
        }
        continue;
      }
      break;
    }
    if (!is_definition) continue;
    size_t body_open = q;
    size_t body_close = MatchForward(code, body_open);
    if (body_close >= code.size()) continue;

    // Which class does this body belong to? Out-of-line `C::fn`, else the
    // innermost class region (in-class definition), else a free function.
    std::string cls;
    if (i >= 2 && TextIs(code[i - 1], "::") &&
        code[i - 2].kind == TokenKind::kIdentifier) {
      cls = std::string(code[i - 2].text);
    } else if (const ClassRegion* r = InnermostRegion(regions, i)) {
      cls = r->name;
    }
    if (cls.empty()) continue;
    const ClassAnnotations* ann = ctx.model->Class(cls);
    if (ann == nullptr) continue;
    // Constructors and the destructor run before/after any sharing is
    // possible; the annotations do not apply there.
    if (fn == cls || (i > 0 && TextIs(code[i - 1], "~"))) continue;

    // Mutexes this body may assume held: SC_REQUIRES from the in-class
    // declaration (carried cross-TU by the model) plus any SC_REQUIRES
    // repeated on this definition.
    std::set<std::string> assumed;
    auto req = ann->required_mutexes.find(std::string(fn));
    if (req != ann->required_mutexes.end()) assumed = req->second;
    for (size_t k = params_close + 1; k < body_open; ++k) {
      if (TextIs(code[k], "SC_REQUIRES") && At(code, k + 1, "(")) {
        size_t e = MatchForward(code, k + 1);
        for (std::string& m : ParenArgNames(code, k + 1, e))
          assumed.insert(std::move(m));
      }
    }

    // Walk the body tracking RAII locks per lexical scope.
    std::vector<std::vector<std::string>> scopes(1);
    auto held = [&](const std::string& mu) {
      if (assumed.count(mu) > 0) return true;
      for (const auto& scope : scopes)
        for (const std::string& m : scope)
          if (m == mu) return true;
      return false;
    };
    for (size_t j = body_open + 1; j < body_close; ++j) {
      std::string_view t = code[j].text;
      if (t == "{") {
        scopes.emplace_back();
        continue;
      }
      if (t == "}") {
        if (scopes.size() > 1) scopes.pop_back();
        continue;
      }
      if (code[j].kind != TokenKind::kIdentifier) continue;
      if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock") {
        // `lock_guard<...> name(mu[, ...])` or brace-init. The guard's
        // lifetime is its enclosing scope, so the mutexes count as held
        // until that scope closes.
        size_t k = j + 1;
        if (At(code, k, "<")) {
          size_t g = SkipAngles(code, k);
          if (g == k) continue;  // `<` never balanced — not a declaration
          k = g + 1;
        }
        if (!IsIdent(code, k)) continue;
        if (!At(code, k + 1, "(") && !At(code, k + 1, "{")) continue;
        size_t e = MatchForward(code, k + 1);
        if (e >= code.size()) continue;
        for (std::string& m : ParenArgNames(code, k + 1, e))
          scopes.back().push_back(std::move(m));
        continue;
      }
      auto g = ann->guarded_members.find(std::string(t));
      if (g == ann->guarded_members.end()) continue;
      // `other.member_` goes through a different object whose lock state
      // this rule cannot see; only unqualified and this-> accesses count.
      if (j > 0) {
        std::string_view prev = code[j - 1].text;
        if (prev == ".") continue;
        if (prev == "->" && !(j >= 2 && TextIs(code[j - 2], "this")))
          continue;
      }
      if (held(g->second)) continue;
      Emit(out, unit, code[j], "sc-guarded-by",
           "'" + g->first + "' is SC_GUARDED_BY(" + g->second + ") but '" +
               g->second +
               "' is not held here: take a std::lock_guard/std::scoped_lock "
               "in an enclosing scope, or annotate the method SC_REQUIRES(" +
               g->second + ")");
    }
  }
}

/// IWYU-lite: a project include must provide at least one symbol the
/// including file mentions. "Provides" is judged against the header's
/// whole transitive closure, so umbrella headers included for re-exported
/// names do not fire; symbol harvesting over-approximates; and a header
/// whose closure declares nothing recognizable is never judged. All three
/// biases point the same way — misses over false alarms — which is why
/// this ships as a warning, not an error.
void CheckUnusedInclude(const FileUnit& unit, const RuleContext& ctx,
                        std::vector<Finding>* out) {
  if (ctx.model == nullptr) return;
  const FileNode* node = ctx.model->Node(unit.path);
  if (node == nullptr) return;
  // Include-only files (umbrella headers) exist to re-export; exempt.
  if (unit.code.empty()) return;

  std::set<std::string, std::less<>> used;
  for (const Token& t : unit.tokens) {
    if (t.kind == TokenKind::kIdentifier) {
      used.insert(std::string(t.text));
    } else if (t.kind == TokenKind::kDirective) {
      // Macros referenced in #if/#ifdef lines are uses too.
      std::string_view text = t.text;
      size_t k = 0;
      while (k < text.size()) {
        if (std::isalpha(static_cast<unsigned char>(text[k])) != 0 ||
            text[k] == '_') {
          size_t start = k;
          while (k < text.size() &&
                 (std::isalnum(static_cast<unsigned char>(text[k])) != 0 ||
                  text[k] == '_'))
            ++k;
          used.insert(std::string(text.substr(start, k - start)));
        } else {
          ++k;
        }
      }
    }
  }

  auto stem = [](const std::string& path) {
    size_t slash = path.rfind('/');
    size_t from = slash == std::string::npos ? 0 : slash + 1;
    size_t dot = path.rfind('.');
    if (dot == std::string::npos || dot < from) dot = path.size();
    return path.substr(from, dot - from);
  };
  std::string my_stem = stem(unit.path);

  for (const auto& [idx, target] : node->resolved_includes) {
    // A .cc's primary header is included for interface conformance, not
    // for symbols the .cc consumes.
    if (!unit.is_header && stem(target) == my_stem) continue;
    const std::set<std::string>& closure = ctx.model->ClosureSymbols(target);
    if (closure.empty()) continue;
    bool referenced = false;
    for (const std::string& sym : closure) {
      if (used.count(sym) > 0) {
        referenced = true;
        break;
      }
    }
    if (referenced) continue;
    const IncludeDirective& d = unit.includes[idx];
    EmitAt(out, unit, d.line, d.col, "sc-unused-include",
           "nothing declared by \"" + d.target +
               "\" (or anything it includes) is referenced in this file: "
               "drop the include, or move it next to the code that needs "
               "it");
  }
}

// ---------------------------------------------------------------------------
// sc-intrinsic-include: CPU intrinsic headers stay behind the dispatch
// boundary
// ---------------------------------------------------------------------------

/// Flags #include of the x86 intrinsic headers (<immintrin.h> and the
/// whole *intrin.h family) anywhere but the allowlisted SIMD kernel
/// header. Everything else must call the dispatch entry points in
/// index/set_kernels.h, so vector code remains runtime-dispatched,
/// differentially tested, and buildable on baseline hardware. <cpuid.h>
/// is deliberately NOT restricted: feature *detection* is portable glue,
/// only instruction *emission* is confined.
void CheckIntrinsicInclude(const FileUnit& unit, const RuleContext&,
                           std::vector<Finding>* out) {
  constexpr std::string_view kSuffix = "intrin.h";
  for (const IncludeDirective& d : unit.includes) {
    // Basename of the include target ("immintrin.h", "x86/avx2intrin.h").
    size_t slash = d.target.rfind('/');
    std::string_view base = std::string_view(d.target).substr(
        slash == std::string::npos ? 0 : slash + 1);
    if (base.size() < kSuffix.size() ||
        base.substr(base.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    EmitAt(out, unit, d.line, d.col, "sc-intrinsic-include",
           "\"" + d.target +
               "\" is a CPU intrinsic header: include it only in the "
               "allowlisted SIMD kernel header and go through the "
               "runtime dispatch in index/set_kernels.h everywhere else");
  }
}

}  // namespace

const std::vector<RuleDef>& AllRules() {
  static const std::vector<RuleDef> kRules = {
      {"sc-banned-rand", Severity::kError,
       "bans std::rand/srand/drand48-family ambient randomness",
       CheckBannedRand},
      {"sc-banned-time", Severity::kError,
       "bans time(nullptr)-style wall-clock seeds", CheckBannedTime},
      {"sc-random-device", Severity::kError,
       "bans std::random_device outside the seed utilities",
       CheckRandomDevice},
      {"sc-unseeded-engine", Severity::kError,
       "bans unseeded std engines and default_random_engine",
       CheckUnseededEngine},
      {"sc-wall-clock", Severity::kError,
       "bans chrono ::now() outside the clock shim", CheckWallClock},
      {"sc-real-sleep", Severity::kError,
       "bans real sleeps; simulated time only", CheckRealSleep},
      {"sc-discarded-status", Severity::kError,
       "flags Status/Result return values dropped on the floor",
       CheckDiscardedStatus},
      {"sc-todo-owner", Severity::kWarning,
       "requires TODO(owner)/FIXME(owner) attribution", CheckTodoOwner},
      {"sc-include-guard", Severity::kError,
       "headers need #pragma once or an include guard", CheckIncludeGuard},
      {"sc-using-namespace-header", Severity::kError,
       "bans using-directives in headers", CheckUsingNamespaceHeader},
      {"sc-direct-include", Severity::kError,
       "configured tokens must be backed by a direct include",
       CheckDirectInclude},
      {"sc-intrinsic-include", Severity::kError,
       "CPU intrinsic headers only in the allowlisted SIMD kernel header",
       CheckIntrinsicInclude},
      {"sc-plan-mutation", Severity::kError,
       "CrawlPlan is immutable: no non-const members, no const_cast",
       CheckPlanMutation},
      {"sc-raw-reinterpret", Severity::kError,
       "bans reinterpret_cast outside the snapshot reader allowlist",
       CheckRawReinterpret},
      {"sc-layer-dag", Severity::kError,
       "includes must respect the configured layer order", CheckLayerDag},
      {"sc-include-cycle", Severity::kError,
       "the project include graph must be acyclic", CheckIncludeCycle},
      {"sc-guarded-by", Severity::kError,
       "SC_GUARDED_BY members need their mutex held (or SC_REQUIRES)",
       CheckGuardedBy},
      {"sc-unused-include", Severity::kWarning,
       "project includes must provide a symbol the file references",
       CheckUnusedInclude},
  };
  return kRules;
}

FileUnit MakeFileUnit(std::string path, std::string content) {
  FileUnit unit;
  unit.path = std::move(path);
  unit.content = std::move(content);
  unit.tokens = Lex(unit.content);
  for (const Token& t : unit.tokens)
    if (IsCodeToken(t)) unit.code.push_back(t);
  size_t dot = unit.path.rfind('.');
  std::string ext = dot == std::string::npos ? "" : unit.path.substr(dot);
  unit.is_header = ext == ".h" || ext == ".hpp" || ext == ".hh";
  for (const Token& t : unit.tokens) {
    if (t.kind != TokenKind::kDirective) continue;
    std::string_view kw = DirectiveKeyword(t.text);
    std::string_view text = t.text;
    if (kw == "include") {
      size_t open = text.find_first_of("\"<");
      if (open == std::string_view::npos) continue;
      char close = text[open] == '"' ? '"' : '>';
      size_t end = text.find(close, open + 1);
      if (end == std::string_view::npos) continue;
      IncludeDirective d;
      d.target = std::string(text.substr(open + 1, end - open - 1));
      d.line = t.line;
      d.col = t.col;
      d.angled = text[open] == '<';
      unit.includes.push_back(std::move(d));
    } else if (kw == "define") {
      size_t at = text.find("define") + 6;
      while (at < text.size() && (text[at] == ' ' || text[at] == '\t')) ++at;
      size_t end = at;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) != 0 ||
              text[end] == '_'))
        ++end;
      if (end > at)
        unit.defines.emplace_back(text.substr(at, end - at));
    }
  }
  return unit;
}

void HarvestStatusFunctions(const FileUnit& unit,
                            std::set<std::string>* out) {
  const std::vector<Token>& code = unit.code;
  auto is_decl_context = [&](size_t type_idx) {
    if (type_idx == 0) return true;
    const Token& prev = code[type_idx - 1];
    std::string_view p = prev.text;
    if (p == ";" || p == "{" || p == "}" || p == ":" || p == "]" ||
        p == ">" || p == "::")
      return true;
    if (prev.kind == TokenKind::kIdentifier) {
      return p == "static" || p == "inline" || p == "virtual" ||
             p == "explicit" || p == "constexpr" || p == "friend" ||
             p == "extern" || p == "mutable" || p == "typename" ||
             p == "public" || p == "private" || p == "protected";
    }
    return false;
  };
  for (size_t i = 0; i < code.size(); ++i) {
    if (code[i].kind != TokenKind::kIdentifier) continue;
    std::string_view t = code[i].text;
    if (t != "Status" && t != "Result") continue;
    if (!is_decl_context(i)) continue;
    size_t j = i + 1;
    if (t == "Result") {
      if (!At(code, j, "<")) continue;
      int depth = 0;
      size_t limit = std::min(code.size(), j + 96);
      for (; j < limit; ++j) {
        if (code[j].text == "<") ++depth;
        if (code[j].text == ">" && --depth == 0) break;
      }
      if (j >= limit) continue;
      ++j;  // past '>'
    }
    // Qualified declarator: name (:: name)* followed by '('.
    if (!IsIdent(code, j)) continue;
    size_t name_idx = j;
    while (At(code, name_idx + 1, "::") && IsIdent(code, name_idx + 2))
      name_idx += 2;
    if (!At(code, name_idx + 1, "(")) continue;
    out->insert(std::string(code[name_idx].text));
  }
}

}  // namespace sclint
